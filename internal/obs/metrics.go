package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing integer. The zero-cost contract:
// methods on a nil *Counter are no-ops, so a handle resolved from a nil
// registry can be used unconditionally on hot paths.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.v += d
}

// Store overwrites the counter with an absolute value. This is the
// scrape path: the lower layers keep their own monotonic uint64 totals,
// and harvesting copies the total instead of adding it, so a periodic
// sampler can re-harvest every window without double-counting.
func (c *Counter) Store(v uint64) {
	if c == nil {
		return
	}
	c.v = v
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time float.
type Gauge struct {
	v float64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add shifts the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v += d
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram: Bounds are inclusive upper
// bounds, with an implicit +Inf bucket at the end. Observe is O(number
// of buckets) with zero allocations.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1
	sum    float64
	n      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the running sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns sum/count (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// DurationBucketsUs are the default bounds (in microseconds) for
// latency-class histograms: 10µs … 10s in decade-and-a-half steps.
var DurationBucketsUs = []float64{
	10, 30, 100, 300, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7,
}

// ByteBuckets are the default bounds for size-class histograms.
var ByteBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// Registry owns a run's metrics. Get-or-create lookups happen at wiring
// time; the returned handles record in O(1). A nil *Registry hands out
// nil handles, whose methods are no-ops — the disabled fast path.
//
// The registry is not goroutine-safe by design: one registry belongs to
// one single-threaded simulation cell. Parallel sweeps give each cell
// its own registry and merge snapshots in canonical order.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket bounds (ascending); nil on a nil registry. Bounds are
// fixed at creation; later calls with different bounds reuse the
// original.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// --- snapshots --------------------------------------------------------------

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name  string
	Value uint64
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name  string
	Value float64
}

// HistPoint is one histogram in a snapshot.
type HistPoint struct {
	Name   string
	Bounds []float64
	Counts []uint64
	Sum    float64
	N      uint64
}

// Mean returns the histogram's mean (0 when empty).
func (h HistPoint) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Percentile estimates the p-th percentile from the bucket counts. It
// follows trace.Percentile's closest-ranks convention — the target rank
// is p/100·(N−1), interpolated linearly — with the interpolation
// happening inside the containing bucket (observations spread uniformly
// between its lower and upper bound; the first bucket's lower bound is
// 0). Ranks landing in the +Inf bucket clamp to the largest finite
// bound, the standard fixed-bucket convention. Returns 0 when empty.
func (h HistPoint) Percentile(p float64) float64 {
	if h.N == 0 || len(h.Counts) == 0 {
		return 0
	}
	rank := p / 100 * float64(h.N-1)
	if rank < 0 {
		rank = 0
	}
	if rank > float64(h.N-1) {
		rank = float64(h.N - 1)
	}
	var cum float64
	lo := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			if i < len(h.Bounds) {
				lo = h.Bounds[i]
			}
			continue
		}
		if i >= len(h.Bounds) {
			return lo // +Inf bucket: clamp to the last finite bound
		}
		hi := h.Bounds[i]
		if rank < cum+float64(c) || i == len(h.Counts)-1 {
			pos := (rank - cum) / float64(c)
			if pos < 0 {
				pos = 0
			}
			if pos > 1 {
				pos = 1
			}
			return lo + pos*(hi-lo)
		}
		cum += float64(c)
		lo = hi
	}
	return lo
}

// Snapshot is a deterministic (name-sorted) copy of a registry's state
// at one moment.
type Snapshot struct {
	Counters []CounterPoint
	Gauges   []GaugePoint
	Hists    []HistPoint
}

// Snapshot copies the registry. Nil-safe: a nil registry snapshots to
// an empty (non-nil) Snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: c.v})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: g.v})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for name, h := range r.hists {
		s.Hists = append(s.Hists, HistPoint{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Sum:    h.sum,
			N:      h.n,
		})
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}

// Counter returns the named counter's value and whether it exists.
func (s *Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Hist returns the named histogram point and whether it exists.
func (s *Snapshot) Hist(name string) (HistPoint, bool) {
	for _, h := range s.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return HistPoint{}, false
}

// HistogramPercentile estimates the p-th percentile of the named
// histogram (see HistPoint.Percentile); ok is false when the snapshot
// has no such histogram.
func (s *Snapshot) HistogramPercentile(name string, p float64) (float64, bool) {
	h, ok := s.Hist(name)
	if !ok {
		return 0, false
	}
	return h.Percentile(p), true
}

// Diff returns s minus prev: counter and histogram deltas (entries
// absent from prev count from zero), gauges at their current value.
// Neither input is mutated. A nil prev returns a copy of s.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	out := &Snapshot{}
	prevCtr := map[string]uint64{}
	prevHist := map[string]HistPoint{}
	if prev != nil {
		for _, c := range prev.Counters {
			prevCtr[c.Name] = c.Value
		}
		for _, h := range prev.Hists {
			prevHist[h.Name] = h
		}
	}
	for _, c := range s.Counters {
		out.Counters = append(out.Counters, CounterPoint{Name: c.Name, Value: c.Value - prevCtr[c.Name]})
	}
	out.Gauges = append(out.Gauges, s.Gauges...)
	for _, h := range s.Hists {
		d := HistPoint{
			Name:   h.Name,
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]uint64(nil), h.Counts...),
			Sum:    h.Sum,
			N:      h.N,
		}
		if p, ok := prevHist[h.Name]; ok && len(p.Counts) == len(d.Counts) {
			for i := range d.Counts {
				d.Counts[i] -= p.Counts[i]
			}
			d.Sum -= p.Sum
			d.N -= p.N
		}
		out.Hists = append(out.Hists, d)
	}
	return out
}

// MergeSnapshots sums snapshots element-wise (counters and histograms
// add; gauges keep the last writer, in argument order). Inputs are not
// mutated; nils are skipped. Merging in canonical cell order keeps the
// result bit-identical at any sweep worker count.
//
// Two histograms under the same name must agree on their bucket bounds:
// a mismatch means the cells were configured differently and their
// bucket counts are not summable — MergeSnapshots returns an error
// rather than silently merging incomparable data. Disjoint metric sets
// merge fine (absent entries count from zero).
func MergeSnapshots(snaps ...*Snapshot) (*Snapshot, error) {
	ctr := map[string]uint64{}
	gauge := map[string]float64{}
	hist := map[string]*HistPoint{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, c := range s.Counters {
			ctr[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			gauge[g.Name] = g.Value
		}
		for _, h := range s.Hists {
			m := hist[h.Name]
			if m == nil {
				m = &HistPoint{
					Name:   h.Name,
					Bounds: append([]float64(nil), h.Bounds...),
					Counts: make([]uint64, len(h.Counts)),
				}
				hist[h.Name] = m
			}
			if !sameBounds(m.Bounds, h.Bounds) || len(m.Counts) != len(h.Counts) {
				return nil, fmt.Errorf("obs: histogram %q bucket bounds mismatch across snapshots (%d vs %d buckets)",
					h.Name, len(m.Counts), len(h.Counts))
			}
			for i := range h.Counts {
				m.Counts[i] += h.Counts[i]
			}
			m.Sum += h.Sum
			m.N += h.N
		}
	}
	out := &Snapshot{}
	for name, v := range ctr {
		out.Counters = append(out.Counters, CounterPoint{Name: name, Value: v})
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	for name, v := range gauge {
		out.Gauges = append(out.Gauges, GaugePoint{Name: name, Value: v})
	}
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	for _, h := range hist {
		out.Hists = append(out.Hists, *h)
	}
	sort.Slice(out.Hists, func(i, j int) bool { return out.Hists[i].Name < out.Hists[j].Name })
	return out, nil
}

// sameBounds reports whether two bucket-bound slices are identical.
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Text renders the snapshot as aligned plain text, the -metrics-out
// format. Deterministic: sorted names, fixed float formatting.
func (s *Snapshot) Text() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("# counters\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "%-56s %d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("# gauges\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "%-56s %.6g\n", g.Name, g.Value)
		}
	}
	if len(s.Hists) > 0 {
		b.WriteString("# histograms (name count sum mean buckets…)\n")
		for _, h := range s.Hists {
			fmt.Fprintf(&b, "%-56s n=%d sum=%.6g mean=%.6g", h.Name, h.N, h.Sum, h.Mean())
			for i, c := range h.Counts {
				if c == 0 {
					continue
				}
				if i < len(h.Bounds) {
					fmt.Fprintf(&b, " le%.6g=%d", h.Bounds[i], c)
				} else {
					fmt.Fprintf(&b, " inf=%d", c)
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
