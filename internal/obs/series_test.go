package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dvemig/internal/simtime"
)

func TestTimeSeriesRingEviction(t *testing.T) {
	st := NewSeriesStore(4)
	ts := st.get("x", SeriesCounter)
	for i := 0; i < 10; i++ {
		ts.Append(simtime.Time(i), float64(i*i))
	}
	if ts.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ts.Len())
	}
	if ts.Total() != 10 {
		t.Fatalf("Total = %d, want 10", ts.Total())
	}
	times, vals := ts.Points()
	wantT := []simtime.Time{6, 7, 8, 9}
	for i := range wantT {
		if times[i] != wantT[i] {
			t.Fatalf("Points times = %v, want %v", times, wantT)
		}
		if vals[i] != float64(wantT[i]*wantT[i]) {
			t.Fatalf("Points vals[%d] = %v, want %v", i, vals[i], wantT[i]*wantT[i])
		}
	}
	at, v, ok := ts.Last()
	if !ok || at != 9 || v != 81 {
		t.Fatalf("Last = (%v, %v, %v), want (9, 81, true)", at, v, ok)
	}
}

func TestTimeSeriesPointsBeforeWrap(t *testing.T) {
	st := NewSeriesStore(8)
	ts := st.get("x", SeriesGauge)
	ts.Append(1, 10)
	ts.Append(2, 20)
	times, vals := ts.Points()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 || vals[1] != 20 {
		t.Fatalf("Points = (%v, %v)", times, vals)
	}
}

func TestTimeSeriesNilNoOps(t *testing.T) {
	var ts *TimeSeries
	ts.Append(1, 2)
	if ts.Len() != 0 || ts.Total() != 0 {
		t.Fatal("nil series should be empty")
	}
	if tm, v := ts.Points(); tm != nil || v != nil {
		t.Fatal("nil Points should return nil slices")
	}
	if _, _, ok := ts.Last(); ok {
		t.Fatal("nil Last should report !ok")
	}
	var st *SeriesStore
	if st.Series("x") != nil || st.Names() != nil || st.Len() != 0 {
		t.Fatal("nil store should be empty")
	}
}

func TestMergeSeriesStoresRaggedAndEmpty(t *testing.T) {
	a := NewSeriesStore(8)
	a.get("c", SeriesCounter).Append(1, 1)
	a.get("c", SeriesCounter).Append(2, 2)
	a.get("c", SeriesCounter).Append(3, 3)
	a.get("only-a", SeriesGauge).Append(1, 5)

	b := NewSeriesStore(8)
	b.get("c", SeriesCounter).Append(1, 10)
	// b's "empty" series exists but holds no points.
	b.get("empty", SeriesGauge)

	m, err := MergeSeriesStores(a, nil, b)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Series("c")
	times, vals := c.Points()
	if len(times) != 3 {
		t.Fatalf("merged len = %d, want 3 (longest contributor)", len(times))
	}
	// Index 0 sums both stores; past b's end its cumulative final (10)
	// carries forward, so the merged counter stays monotonic.
	want := []float64{11, 12, 13}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("merged vals = %v, want %v", vals, want)
		}
	}
	if m.Series("only-a").Len() != 1 {
		t.Fatal("series present in one store must survive the merge")
	}
	if m.Series("empty") == nil || m.Series("empty").Len() != 0 {
		t.Fatal("empty series must merge to an empty series")
	}
}

func TestMergeSeriesStoresKindMismatch(t *testing.T) {
	a := NewSeriesStore(4)
	a.get("x", SeriesCounter).Append(1, 1)
	b := NewSeriesStore(4)
	b.get("x", SeriesGauge).Append(1, 1)
	if _, err := MergeSeriesStores(a, b); err == nil {
		t.Fatal("kind mismatch must error")
	}
}

// TestSamplerAlignedWindows pins the determinism anchor: sample
// instants are whole multiples of the period no matter when Start was
// called, and each window's [From, To) range tiles the run.
func TestSamplerAlignedWindows(t *testing.T) {
	sched := simtime.NewScheduler()
	reg := NewRegistry()
	n := reg.Counter("n")
	var windows []SampleWindow

	sched.RunFor(150 * simtime.Duration(time.Millisecond)) // start off-grid
	s := NewSampler(sched, reg, 100*simtime.Duration(time.Millisecond), 0)
	s.OnSample(func(w SampleWindow) { windows = append(windows, w) })
	s.Harvest = func(r *Registry) { n.Add(1) }
	s.Start()
	sched.RunFor(350 * simtime.Duration(time.Millisecond)) // now = 500ms
	s.Stop()

	// Ticks at 200, 300, 400, 500ms — never at 150+100k.
	if len(windows) != 4 {
		t.Fatalf("got %d windows, want 4", len(windows))
	}
	ms := simtime.Duration(time.Millisecond)
	wantTo := []simtime.Time{200 * ms, 300 * ms, 400 * ms, 500 * ms}
	for i, w := range windows {
		if w.To != wantTo[i] {
			t.Fatalf("window %d To = %v, want %v", i, w.To, wantTo[i])
		}
		if w.Index != i {
			t.Fatalf("window %d Index = %d", i, w.Index)
		}
		if i > 0 && w.From != windows[i-1].To {
			t.Fatalf("window %d From = %v does not tile previous To %v", i, w.From, windows[i-1].To)
		}
	}
	// Harvest ran once per window with Add (deliberately non-idempotent
	// here) — the counter series must be cumulative and monotonic.
	times, vals := s.Store().Series("n").Points()
	if len(times) != 4 {
		t.Fatalf("series len = %d, want 4", len(times))
	}
	for i := range vals {
		if vals[i] != float64(i+1) {
			t.Fatalf("counter series = %v, want 1..4", vals)
		}
	}
	if s.Windows() != 4 {
		t.Fatalf("Windows = %d, want 4", s.Windows())
	}
}

func TestSamplerFlushClosesPartialWindow(t *testing.T) {
	sched := simtime.NewScheduler()
	reg := NewRegistry()
	s := NewSampler(sched, reg, simtime.Duration(time.Second), 0)
	var last SampleWindow
	s.OnSample(func(w SampleWindow) { last = w })
	s.Start()
	sched.RunFor(2500 * simtime.Duration(time.Millisecond))
	s.Stop()
	if s.Windows() != 2 {
		t.Fatalf("Windows = %d, want 2 before Flush", s.Windows())
	}
	s.Flush()
	if s.Windows() != 3 {
		t.Fatalf("Windows = %d, want 3 after Flush", s.Windows())
	}
	sec := simtime.Duration(time.Second)
	if last.From != 2*sec || last.To != 2500*simtime.Duration(time.Millisecond) {
		t.Fatalf("flush window = [%v, %v)", last.From, last.To)
	}
	s.Flush() // idempotent: clock has not advanced
	if s.Windows() != 3 {
		t.Fatalf("second Flush emitted a window")
	}
}

func TestSamplerHistSeries(t *testing.T) {
	sched := simtime.NewScheduler()
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{10, 100, 1000})
	s := NewSampler(sched, reg, simtime.Duration(time.Second), 0)
	s.Start()
	h.Observe(50)
	h.Observe(60)
	sched.RunFor(simtime.Duration(time.Second))
	h.Observe(500)
	sched.RunFor(simtime.Duration(time.Second))
	s.Stop()

	_, nVals := s.Store().Series("lat/n").Points()
	if len(nVals) != 2 || nVals[0] != 2 || nVals[1] != 3 {
		t.Fatalf("lat/n = %v, want [2 3] (cumulative)", nVals)
	}
	_, p99 := s.Store().Series("lat/p99").Points()
	if len(p99) != 2 {
		t.Fatalf("lat/p99 len = %d", len(p99))
	}
	// Window 1's delta holds only the 500 observation: with one sample
	// the closest-ranks estimate is its bucket's lower bound (100),
	// strictly above window 0's estimate from the (10, 100] bucket.
	if p99[1] <= p99[0] || p99[1] < 100 || p99[1] > 1000 {
		t.Fatalf("lat/p99 = %v, want window 1 in [100, 1000]", p99)
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	sched := simtime.NewScheduler()
	o := New(sched)
	c := o.Metrics.Counter("reqs")
	s := NewSampler(sched, o.Metrics, simtime.Duration(time.Second), 0)
	o.Sampler = s
	s.Start()
	c.Add(3)
	sched.RunFor(2 * simtime.Duration(time.Second))
	s.Stop()
	cap := o.Capture("cell0")
	if cap.Series == nil || cap.SamplePeriod != simtime.Duration(time.Second) {
		t.Fatalf("capture did not fold the sampler in: %+v", cap)
	}

	var buf bytes.Buffer
	if err := WriteSeriesJSON(&buf, cap); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !LooksLikeSeriesJSON(data) {
		t.Fatal("exported series JSON not auto-detected")
	}
	if LooksLikeSeriesJSON([]byte(`{"traceEvents":[]}`)) {
		t.Fatal("trace JSON misdetected as series")
	}
	if err := ValidateSeriesJSON(data); err != nil {
		t.Fatalf("exported series JSON fails its own validator: %v", err)
	}

	var csv bytes.Buffer
	if err := WriteSeriesCSV(&csv, cap); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "capture,series,kind,t_ns,value\n") {
		t.Fatalf("csv header: %q", csv.String())
	}
	if !strings.Contains(csv.String(), "cell0,reqs,counter,") {
		t.Fatalf("csv missing reqs row:\n%s", csv.String())
	}
	if !LooksLikeSeriesCSV(csv.Bytes()) {
		t.Fatal("exported series CSV not auto-detected")
	}
	if LooksLikeSeriesCSV(data) {
		t.Fatal("series JSON misdetected as CSV")
	}
	if err := ValidateSeriesCSV(csv.Bytes()); err != nil {
		t.Fatalf("exported series CSV fails its own validator: %v", err)
	}
}

func TestValidateSeriesCSVRejects(t *testing.T) {
	const hdr = "capture,series,kind,t_ns,value\n"
	bad := []struct{ name, doc string }{
		{"missing header", "cell0,reqs,counter,1,1\n"},
		{"no rows", hdr},
		{"field count", hdr + "cell0,reqs,counter,1\n"},
		{"unknown kind", hdr + "cell0,reqs,woble,1,1\n"},
		{"bad timestamp", hdr + "cell0,reqs,counter,x,1\n"},
		{"bad value", hdr + "cell0,reqs,counter,1,x\n"},
		{"non-increasing time", hdr + "cell0,reqs,counter,2,1\ncell0,reqs,counter,2,2\n"},
		{"counter decrease", hdr + "cell0,reqs,counter,1,2\ncell0,reqs,counter,2,1\n"},
		{"negative counter", hdr + "cell0,reqs,counter,1,-1\n"},
		{"kind flip", hdr + "cell0,reqs,counter,1,1\ncell0,reqs,gauge,2,0.5\n"},
		{"empty names", hdr + ",reqs,counter,1,1\n"},
	}
	for _, tc := range bad {
		if err := ValidateSeriesCSV([]byte(tc.doc)); err == nil {
			t.Errorf("%s: CSV validator accepted invalid doc", tc.name)
		}
	}
	good := hdr +
		"cell0,reqs,counter,1,1\n" +
		"cell0,reqs,counter,2,3\n" +
		"cell0,load,gauge,1,0.5\n" +
		"cell0,load,gauge,2,0.25\n" + // gauges may decrease
		"cell1,reqs,counter,1,7\n" // same series name, different capture
	if err := ValidateSeriesCSV([]byte(good)); err != nil {
		t.Errorf("CSV validator rejected valid doc: %v", err)
	}
}

func TestValidateSeriesJSONRejects(t *testing.T) {
	bad := []struct{ name, doc string }{
		{"kind marker", `{"kind":"nope","captures":[]}`},
		{"no captures", `{"kind":"dvemig-series","captures":[]}`},
		{"zero period", `{"kind":"dvemig-series","captures":[{"label":"x","period_ns":0,"max_samples":4,"series":[{"name":"a","kind":"counter","total":1,"t_ns":[1],"v":[1]}]}]}`},
		{"ragged arrays", `{"kind":"dvemig-series","captures":[{"label":"x","period_ns":1,"max_samples":4,"series":[{"name":"a","kind":"counter","total":2,"t_ns":[1,2],"v":[1]}]}]}`},
		{"non-increasing time", `{"kind":"dvemig-series","captures":[{"label":"x","period_ns":1,"max_samples":4,"series":[{"name":"a","kind":"counter","total":2,"t_ns":[2,2],"v":[1,1]}]}]}`},
		{"counter decrease", `{"kind":"dvemig-series","captures":[{"label":"x","period_ns":1,"max_samples":4,"series":[{"name":"a","kind":"counter","total":2,"t_ns":[1,2],"v":[2,1]}]}]}`},
		{"unknown series kind", `{"kind":"dvemig-series","captures":[{"label":"x","period_ns":1,"max_samples":4,"series":[{"name":"a","kind":"woble","total":1,"t_ns":[1],"v":[1]}]}]}`},
	}
	for _, tc := range bad {
		if err := ValidateSeriesJSON([]byte(tc.doc)); err == nil {
			t.Errorf("%s: validator accepted invalid doc", tc.name)
		}
	}
}
