package obs

import (
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// Harvesting scrapes the plain uint64 counters the lower layers already
// keep (NIC tx/rx/drop/dup, stack demux and retransmit stats, scheduler
// steps/cancels) into a Registry at capture time. The lower layers stay
// obs-free — no import cycle, no hot-path cost — and the registry gets a
// complete cross-layer snapshot with stable metric names.

// HarvestScheduler records the event-loop totals.
func HarvestScheduler(r *Registry, sched *simtime.Scheduler) {
	if r == nil || sched == nil {
		return
	}
	r.Counter("simtime/events_fired_total").Add(sched.Steps())
	r.Counter("simtime/events_canceled_total").Add(sched.Cancels())
	r.Gauge("simtime/events_pending").Set(float64(sched.Pending()))
}

// HarvestNIC records one link's counters under link/<name>/…
func HarvestNIC(r *Registry, nic *netsim.NIC) {
	if r == nil || nic == nil {
		return
	}
	p := "link/" + nic.Name + "/"
	r.Counter(p + "tx_packets").Add(nic.TxPackets)
	r.Counter(p + "rx_packets").Add(nic.RxPackets)
	r.Counter(p + "tx_bytes").Add(nic.TxBytes)
	r.Counter(p + "rx_bytes").Add(nic.RxBytes)
	r.Counter(p + "loss_dropped").Add(nic.LossDropped)
	r.Counter(p + "fault_dropped").Add(nic.FaultDropped)
	r.Counter(p + "fault_duplicated").Add(nic.FaultDuplicated)
	r.Counter(p + "fault_delayed").Add(nic.FaultDelayed)
}

// HarvestStack records one node's stack counters under stack/<name>/…
func HarvestStack(r *Registry, st *netstack.Stack) {
	if r == nil || st == nil {
		return
	}
	p := "stack/" + st.Name + "/"
	s := &st.Stats
	r.Counter(p + "delivered").Add(s.Delivered)
	r.Counter(p + "no_socket_drops").Add(s.NoSocketDrops)
	r.Counter(p + "hook_drops").Add(s.HookDrops)
	r.Counter(p + "reinjected").Add(s.Reinjected)
	r.Counter(p + "checksum_errors").Add(s.ChecksumErrors)
	r.Counter(p + "tcp_retransmits").Add(s.Retransmits)
	r.Counter(p + "tcp_fast_retransmits").Add(s.FastRetransmits)
	r.Counter(p + "tcp_rto_resets").Add(s.RTOResets)
	r.Counter(p + "tcp_ts_fixups").Add(s.TSFixups)
}

// HarvestCluster walks the whole testbed: every node's NICs and stack,
// plus the shared scheduler. Call it once, just before Capture.
func HarvestCluster(r *Registry, c *proc.Cluster) {
	if r == nil || c == nil {
		return
	}
	HarvestScheduler(r, c.Sched)
	for _, n := range c.Nodes {
		HarvestNIC(r, n.PublicNIC)
		HarvestNIC(r, n.LocalNIC)
		HarvestStack(r, n.Stack)
	}
}
