package obs

import (
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// Harvesting scrapes the plain uint64 counters the lower layers already
// keep (NIC tx/rx/drop/dup, stack demux and retransmit stats, scheduler
// steps/cancels) into a Registry at capture time. The lower layers stay
// obs-free — no import cycle, no hot-path cost — and the registry gets a
// complete cross-layer snapshot with stable metric names.
//
// Harvests use Counter.Store (absolute copy of the layer's own
// monotonic total), never Add: harvesting is idempotent, so the
// periodic Sampler can re-scrape the cluster at every sample boundary
// and a final capture-time harvest never double-counts.

// HarvestScheduler records the event-loop totals.
func HarvestScheduler(r *Registry, sched *simtime.Scheduler) {
	if r == nil || sched == nil {
		return
	}
	r.Counter("simtime/events_fired_total").Store(sched.Steps())
	r.Counter("simtime/events_canceled_total").Store(sched.Cancels())
	r.Gauge("simtime/events_pending").Set(float64(sched.Pending()))
}

// HarvestNIC records one link's counters under link/<name>/…
func HarvestNIC(r *Registry, nic *netsim.NIC) {
	if r == nil || nic == nil {
		return
	}
	p := "link/" + nic.Name + "/"
	r.Counter(p + "tx_packets").Store(nic.TxPackets)
	r.Counter(p + "rx_packets").Store(nic.RxPackets)
	r.Counter(p + "tx_bytes").Store(nic.TxBytes)
	r.Counter(p + "rx_bytes").Store(nic.RxBytes)
	r.Counter(p + "loss_dropped").Store(nic.LossDropped)
	r.Counter(p + "fault_dropped").Store(nic.FaultDropped)
	r.Counter(p + "fault_duplicated").Store(nic.FaultDuplicated)
	r.Counter(p + "fault_delayed").Store(nic.FaultDelayed)
}

// HarvestStack records one node's stack counters under stack/<name>/…
func HarvestStack(r *Registry, st *netstack.Stack) {
	if r == nil || st == nil {
		return
	}
	p := "stack/" + st.Name + "/"
	s := &st.Stats
	r.Counter(p + "delivered").Store(s.Delivered)
	r.Counter(p + "no_socket_drops").Store(s.NoSocketDrops)
	r.Counter(p + "hook_drops").Store(s.HookDrops)
	r.Counter(p + "reinjected").Store(s.Reinjected)
	r.Counter(p + "checksum_errors").Store(s.ChecksumErrors)
	r.Counter(p + "tcp_retransmits").Store(s.Retransmits)
	r.Counter(p + "tcp_fast_retransmits").Store(s.FastRetransmits)
	r.Counter(p + "tcp_rto_resets").Store(s.RTOResets)
	r.Counter(p + "tcp_ts_fixups").Store(s.TSFixups)
}

// HarvestCluster walks the whole testbed: every node's NICs and stack,
// plus the shared scheduler. Idempotent — call it before Capture, or
// hang it on a Sampler's Harvest hook to re-scrape every window.
func HarvestCluster(r *Registry, c *proc.Cluster) {
	if r == nil || c == nil {
		return
	}
	HarvestScheduler(r, c.Sched)
	for _, n := range c.Nodes {
		HarvestNIC(r, n.PublicNIC)
		HarvestNIC(r, n.LocalNIC)
		HarvestStack(r, n.Stack)
	}
}
