package obs

import (
	"bytes"
	"strings"
	"testing"

	"dvemig/internal/simtime"
)

// connectedCapture builds a capture shaped like a real migration trace:
// a conductor rebalance root on node1, the source migration span linked
// under it, phase children, and the destination inbound span linked
// across tracks.
func connectedCapture(t *testing.T) *Capture {
	t.Helper()
	sched := simtime.NewScheduler()
	o := New(sched)
	bal := o.T().Start("node1", "rebalance")
	mig := o.T().StartLinked("node1", "migration", bal.Context())
	fr := mig.Child("freeze")
	inb := o.T().StartLinked("node2", "inbound", mig.Context())
	rst := inb.Child("restore")
	rst.Close()
	inb.Close()
	fr.Close()
	mig.Close()
	bal.Close()
	return o.Capture("run")
}

func traceBytes(t *testing.T, c *Capture) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, c); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestCheckConnectedAcceptsLinkedTrace(t *testing.T) {
	data := traceBytes(t, connectedCapture(t))
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatal(err)
	}
	if err := CheckConnected(data); err != nil {
		t.Fatalf("connected trace rejected: %v", err)
	}
}

func TestCheckConnectedRejectsOrphanInbound(t *testing.T) {
	sched := simtime.NewScheduler()
	o := New(sched)
	mig := o.T().Start("node1", "migration")
	// The destination roots its own trace: the context was dropped.
	inb := o.T().Start("node2", "inbound")
	inb.Close()
	mig.Close()
	err := CheckConnected(traceBytes(t, o.Capture("run")))
	if err == nil {
		t.Fatal("orphan inbound accepted")
	}
	if !strings.Contains(err.Error(), "inbound") {
		t.Fatalf("error does not name the orphan span: %v", err)
	}
}

func TestCheckConnectedRequiresCrossTrackLink(t *testing.T) {
	// A migration trace that never reaches a second track.
	sched := simtime.NewScheduler()
	o := New(sched)
	mig := o.T().Start("node1", "migration")
	mig.Child("freeze").Close()
	mig.Close()
	err := CheckConnected(traceBytes(t, o.Capture("run")))
	if err == nil || !strings.Contains(err.Error(), "no trace links") {
		t.Fatalf("single-track trace accepted: %v", err)
	}
}

func TestCheckConnectedRejectsGarbage(t *testing.T) {
	if err := CheckConnected([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := CheckConnected([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestValidateMetricsText(t *testing.T) {
	sched := simtime.NewScheduler()
	o := New(sched)
	o.M().Counter("mig/completed_total").Inc()
	o.M().Gauge("nodes/cpu").Set(0.4)
	h := o.M().Histogram("mig/freeze_us", DurationBucketsUs)
	h.Observe(500)
	h.Observe(90000)
	c := o.Capture("run")
	var b bytes.Buffer
	if err := WriteMetricsText(&b, c); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetricsText(b.Bytes()); err != nil {
		t.Fatalf("real metrics export rejected: %v", err)
	}
}

func TestValidateMetricsTextFailures(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"empty", "", "no metric lines"},
		{"outside-section", "mig/x 4\n", "outside any section"},
		{"negative-counter", "# counters\nmig/x -3\n", "monotonic"},
		{"fractional-counter", "# counters\nmig/x 3.5\n", "monotonic"},
		{"bad-gauge", "# gauges\nnodes/cpu abc\n", "not numeric"},
		{"bad-section", "# bogus\n", "unknown section header"},
		{"hist-count-mismatch", "# histograms (name count sum mean buckets…)\nmig/f_us n=3 sum=30 mean=10 le100=2\n", "bucket counts sum to 2 but n=3"},
		{"hist-bounds-order", "# histograms (name count sum mean buckets…)\nmig/f_us n=2 sum=30 mean=15 le100=1 le50=1\n", "not strictly increasing"},
		{"hist-mean-lie", "# histograms (name count sum mean buckets…)\nmig/f_us n=2 sum=30 mean=99 le100=2\n", "inconsistent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateMetricsText([]byte(tc.text))
			if err == nil {
				t.Fatalf("accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
