package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// CheckConnected verifies that a Chrome trace export forms connected
// causal trees: every span carries span_id/trace_id coordinates, every
// parent_id resolves to a span in the same process, every ancestry walk
// terminates at the span whose ID equals the trace ID (the trace root),
// and cross-track links — the spans a remote node parents into another
// node's trace (inbound, reserve, election) — are actually linked
// rather than rooting orphan traces. Flow events must come in matched
// start/finish pairs. At least one trace must span two or more tracks
// and contain both a "migration" and an "inbound" span, proving the
// trace context survived the node boundary end to end.
func CheckConnected(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}

	type spanRec struct {
		index  int
		name   string
		pid    int
		tid    int
		id     uint64
		trace  uint64
		parent uint64 // 0 = root
		hasPar bool
	}
	str := func(ev map[string]any, key string) string {
		s, _ := ev[key].(string)
		return s
	}
	num := func(ev map[string]any, key string) int {
		f, _ := ev[key].(float64)
		return int(f)
	}
	argU64 := func(ev map[string]any, key string) (uint64, bool) {
		args, _ := ev["args"].(map[string]any)
		s, _ := args[key].(string)
		if s == "" {
			return 0, false
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}

	spans := map[[2]uint64]*spanRec{} // (pid, span_id) -> span
	var all []*spanRec
	flows := map[string][2]int{} // flow id -> {starts, finishes}
	for i, ev := range doc.TraceEvents {
		switch str(ev, "ph") {
		case "X":
			if str(ev, "cat") != "span" {
				continue
			}
			r := &spanRec{index: i, name: str(ev, "name"),
				pid: num(ev, "pid"), tid: num(ev, "tid")}
			var ok bool
			if r.id, ok = argU64(ev, "span_id"); !ok {
				return fmt.Errorf("obs: traceEvents[%d] span %q has no span_id", i, r.name)
			}
			if r.trace, ok = argU64(ev, "trace_id"); !ok {
				return fmt.Errorf("obs: traceEvents[%d] span %q has no trace_id", i, r.name)
			}
			r.parent, r.hasPar = argU64(ev, "parent_id")
			key := [2]uint64{uint64(r.pid), r.id}
			if prev, dup := spans[key]; dup {
				return fmt.Errorf("obs: traceEvents[%d] span %q reuses span_id %d of span %q",
					i, r.name, r.id, prev.name)
			}
			spans[key] = r
			all = append(all, r)
		case "s", "f":
			id := str(ev, "id")
			c := flows[id]
			if str(ev, "ph") == "s" {
				c[0]++
			} else {
				c[1]++
			}
			flows[id] = c
		}
	}
	if len(all) == 0 {
		return fmt.Errorf("obs: trace contains no spans")
	}
	for id, c := range flows {
		if c[0] != c[1] {
			return fmt.Errorf("obs: flow %q has %d starts but %d finishes", id, c[0], c[1])
		}
	}

	// Every ancestry must terminate at the span whose ID is the trace ID.
	tracksOfTrace := map[[2]uint64]map[int]bool{}   // (pid, trace) -> tids
	namesOfTrace := map[[2]uint64]map[string]bool{} // (pid, trace) -> span names
	for _, r := range all {
		cur := r
		for steps := 0; ; steps++ {
			if steps > 10000 {
				return fmt.Errorf("obs: span %q (id %d) ancestry does not terminate (cycle?)", r.name, r.id)
			}
			if !cur.hasPar {
				if cur.id != cur.trace {
					return fmt.Errorf("obs: span %q (id %d, trace %d) is an orphan root: no parent_id but its id is not the trace id — the trace context was dropped on a node boundary",
						cur.name, cur.id, cur.trace)
				}
				break
			}
			p, ok := spans[[2]uint64{uint64(cur.pid), cur.parent}]
			if !ok {
				return fmt.Errorf("obs: span %q (id %d) names parent %d which is not in the export",
					cur.name, cur.id, cur.parent)
			}
			if p.trace != cur.trace {
				return fmt.Errorf("obs: span %q (id %d, trace %d) has parent %q in a different trace %d",
					cur.name, cur.id, cur.trace, p.name, p.trace)
			}
			cur = p
		}
		tk := [2]uint64{uint64(r.pid), r.trace}
		if tracksOfTrace[tk] == nil {
			tracksOfTrace[tk] = map[int]bool{}
			namesOfTrace[tk] = map[string]bool{}
		}
		tracksOfTrace[tk][r.tid] = true
		namesOfTrace[tk][r.name] = true
	}

	// Migration-related spans that must never root their own traces: the
	// destination and conductor spans that only exist as linked children.
	for _, r := range all {
		if (r.name == "inbound" || r.name == "reserve") && !r.hasPar {
			return fmt.Errorf("obs: %s span (id %d) is unlinked — the migration trace context did not cross the node boundary", r.name, r.id)
		}
	}

	// At least one trace must prove end-to-end connectivity: a migration
	// root and an inbound restore on different tracks in the same tree.
	for tk, names := range namesOfTrace {
		if names["migration"] && names["inbound"] && len(tracksOfTrace[tk]) >= 2 {
			return nil
		}
	}
	return fmt.Errorf("obs: no trace links a source migration span to a destination inbound span across tracks — the export contains no connected end-to-end migration")
}

// LooksLikeSeriesJSON reports whether data is a -series-out artifact
// (top-level kind marker), so tracecheck can route it without a flag.
func LooksLikeSeriesJSON(data []byte) bool {
	var probe struct {
		Kind string `json:"kind"`
	}
	return json.Unmarshal(data, &probe) == nil && probe.Kind == SeriesDocKind
}

// ValidateSeriesJSON validates a -series-out artifact: the kind marker,
// at least one capture with a positive period, and per series — a
// non-empty name, a known kind, parallel t_ns/v arrays within the
// retention cap, strictly increasing timestamps, a total of at least
// the retained length, and (for counter-backed kinds) non-decreasing
// values, since a monotonic total sampled over time can never go down.
func ValidateSeriesJSON(data []byte) error {
	var doc seriesDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: series file is not valid JSON: %w", err)
	}
	if doc.Kind != SeriesDocKind {
		return fmt.Errorf("obs: series file kind %q, want %q", doc.Kind, SeriesDocKind)
	}
	if len(doc.Captures) == 0 {
		return fmt.Errorf("obs: series file has no captures")
	}
	kinds := map[string]bool{
		string(SeriesCounter): true, string(SeriesGauge): true,
		string(SeriesHistCount): true, string(SeriesHistP99): true,
	}
	total := 0
	for ci, c := range doc.Captures {
		if c.PeriodNs <= 0 {
			return fmt.Errorf("obs: capture[%d] %q has non-positive period_ns %d", ci, c.Label, c.PeriodNs)
		}
		for si, s := range c.Series {
			where := fmt.Sprintf("capture[%d] %q series[%d] %q", ci, c.Label, si, s.Name)
			if s.Name == "" {
				return fmt.Errorf("obs: capture[%d] %q series[%d] has no name", ci, c.Label, si)
			}
			if !kinds[s.Kind] {
				return fmt.Errorf("obs: %s has unknown kind %q", where, s.Kind)
			}
			if len(s.T) != len(s.V) {
				return fmt.Errorf("obs: %s has %d timestamps but %d values", where, len(s.T), len(s.V))
			}
			if c.MaxSamples > 0 && len(s.T) > c.MaxSamples {
				return fmt.Errorf("obs: %s retains %d samples, cap is %d", where, len(s.T), c.MaxSamples)
			}
			if s.Total < uint64(len(s.T)) {
				return fmt.Errorf("obs: %s total %d below retained length %d", where, s.Total, len(s.T))
			}
			monotonic := s.Kind == string(SeriesCounter) || s.Kind == string(SeriesHistCount)
			for i := range s.T {
				if i > 0 && s.T[i] <= s.T[i-1] {
					return fmt.Errorf("obs: %s timestamps not strictly increasing at index %d", where, i)
				}
				if monotonic {
					if s.V[i] < 0 {
						return fmt.Errorf("obs: %s counter value negative at index %d", where, i)
					}
					if i > 0 && s.V[i] < s.V[i-1] {
						return fmt.Errorf("obs: %s counter series decreases at index %d (%g → %g)",
							where, i, s.V[i-1], s.V[i])
					}
				}
			}
			total++
		}
	}
	if total == 0 {
		return fmt.Errorf("obs: series file contains no series")
	}
	return nil
}

// seriesCSVHeader is the first line WriteSeriesCSV emits; tracecheck
// uses it to auto-detect CSV series artifacts.
const seriesCSVHeader = "capture,series,kind,t_ns,value"

// LooksLikeSeriesCSV reports whether data starts with the series CSV
// header line, so tracecheck can route .csv series artifacts without a
// flag.
func LooksLikeSeriesCSV(data []byte) bool {
	s := string(data)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimRight(s, "\r") == seriesCSVHeader
}

// ValidateSeriesCSV validates a .csv series artifact under the same
// invariants as the JSON form: the exact header, five well-formed
// fields per row, known series kinds, and per (capture, series) group —
// a consistent kind, strictly increasing timestamps, and non-negative
// non-decreasing values for counter-backed kinds. Rows of one group
// must be contiguous (WriteSeriesCSV emits them that way), so an
// interleaved or shuffled file fails the timestamp check.
func ValidateSeriesCSV(data []byte) error {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimRight(lines[0], "\r") != seriesCSVHeader {
		return fmt.Errorf("obs: series CSV missing header %q", seriesCSVHeader)
	}
	kinds := map[string]bool{
		string(SeriesCounter): true, string(SeriesGauge): true,
		string(SeriesHistCount): true, string(SeriesHistP99): true,
	}
	type group struct {
		kind  string
		lastT int64
		lastV float64
		rows  int
	}
	groups := map[[2]string]*group{}
	rows := 0
	for ln, line := range lines[1:] {
		lineNo := ln + 2
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 5 {
			return fmt.Errorf("obs: line %d: %d fields, want 5 (%s)", lineNo, len(f), seriesCSVHeader)
		}
		capture, series, kind := f[0], f[1], f[2]
		if capture == "" || series == "" {
			return fmt.Errorf("obs: line %d: empty capture or series name", lineNo)
		}
		if !kinds[kind] {
			return fmt.Errorf("obs: line %d: series %q has unknown kind %q", lineNo, series, kind)
		}
		t, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return fmt.Errorf("obs: line %d: t_ns %q is not an integer", lineNo, f[3])
		}
		v, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return fmt.Errorf("obs: line %d: value %q is not numeric", lineNo, f[4])
		}
		key := [2]string{capture, series}
		g := groups[key]
		if g == nil {
			g = &group{kind: kind}
			groups[key] = g
		}
		where := fmt.Sprintf("capture %q series %q", capture, series)
		if g.kind != kind {
			return fmt.Errorf("obs: line %d: %s changes kind %q → %q", lineNo, where, g.kind, kind)
		}
		if g.rows > 0 && t <= g.lastT {
			return fmt.Errorf("obs: line %d: %s timestamps not strictly increasing (%d after %d)",
				lineNo, where, t, g.lastT)
		}
		if kind == string(SeriesCounter) || kind == string(SeriesHistCount) {
			if v < 0 {
				return fmt.Errorf("obs: line %d: %s counter value negative", lineNo, where)
			}
			if g.rows > 0 && v < g.lastV {
				return fmt.Errorf("obs: line %d: %s counter series decreases (%g → %g)",
					lineNo, where, g.lastV, v)
			}
		}
		g.lastT, g.lastV = t, v
		g.rows++
		rows++
	}
	if rows == 0 {
		return fmt.Errorf("obs: series CSV contains no sample rows")
	}
	return nil
}

// ValidateMetricsText validates a -metrics-out artifact: section
// structure (`=== label ===` capture markers, `# counters` / `# gauges`
// / `# histograms` headers), line shapes per section, counter values
// that parse as non-negative integers (a monotonic counter can never be
// negative or fractional), histogram bucket sums that equal the
// observation count, and strictly increasing bucket bounds.
func ValidateMetricsText(data []byte) error {
	const (
		secNone = iota
		secCounters
		secGauges
		secHists
	)
	sec := secNone
	lines := strings.Split(string(data), "\n")
	sawAny := false
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "=== ") && strings.HasSuffix(line, " ===") {
			sec = secNone // new capture section; headers must reappear
			continue
		}
		if strings.HasPrefix(line, "# ") {
			switch {
			case line == "# counters":
				sec = secCounters
			case line == "# gauges":
				sec = secGauges
			case strings.HasPrefix(line, "# histograms"):
				sec = secHists
			default:
				return fmt.Errorf("obs: line %d: unknown section header %q", lineNo, line)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("obs: line %d: malformed metric line %q", lineNo, line)
		}
		name := fields[0]
		switch sec {
		case secNone:
			return fmt.Errorf("obs: line %d: metric %q outside any section", lineNo, name)
		case secCounters:
			if len(fields) != 2 {
				return fmt.Errorf("obs: line %d: counter %q has %d fields, want 2", lineNo, name, len(fields))
			}
			if _, err := strconv.ParseUint(fields[1], 10, 64); err != nil {
				return fmt.Errorf("obs: line %d: counter %q value %q is not a non-negative integer (counters are monotonic)", lineNo, name, fields[1])
			}
		case secGauges:
			if len(fields) != 2 {
				return fmt.Errorf("obs: line %d: gauge %q has %d fields, want 2", lineNo, name, len(fields))
			}
			if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
				return fmt.Errorf("obs: line %d: gauge %q value %q is not numeric", lineNo, name, fields[1])
			}
		case secHists:
			if err := validateHistLine(fields[1:]); err != nil {
				return fmt.Errorf("obs: line %d: histogram %q: %w", lineNo, name, err)
			}
		}
		sawAny = true
	}
	if !sawAny {
		return fmt.Errorf("obs: metrics file contains no metric lines")
	}
	return nil
}

// validateHistLine checks one histogram line's fields past the name:
// n=, sum=, mean= then zero or more leBOUND= buckets and an optional
// inf= bucket. The bucket counts must sum to n and the bounds must be
// strictly increasing.
func validateHistLine(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("want at least n=/sum=/mean= fields, got %d", len(fields))
	}
	kv := func(f, key string) (string, error) {
		if !strings.HasPrefix(f, key+"=") {
			return "", fmt.Errorf("field %q: want %s=...", f, key)
		}
		return f[len(key)+1:], nil
	}
	nStr, err := kv(fields[0], "n")
	if err != nil {
		return err
	}
	n, err := strconv.ParseUint(nStr, 10, 64)
	if err != nil {
		return fmt.Errorf("n=%q is not a non-negative integer", nStr)
	}
	sumStr, err := kv(fields[1], "sum")
	if err != nil {
		return err
	}
	sum, err := strconv.ParseFloat(sumStr, 64)
	if err != nil {
		return fmt.Errorf("sum=%q is not numeric", sumStr)
	}
	meanStr, err := kv(fields[2], "mean")
	if err != nil {
		return err
	}
	mean, err := strconv.ParseFloat(meanStr, 64)
	if err != nil {
		return fmt.Errorf("mean=%q is not numeric", meanStr)
	}
	if n > 0 {
		want := sum / float64(n)
		tol := math.Max(math.Abs(want), 1) * 1e-4 // %.6g prints ~6 significant digits
		if math.Abs(mean-want) > tol {
			return fmt.Errorf("mean %g inconsistent with sum/n = %g", mean, want)
		}
	}
	var bucketSum uint64
	lastBound := math.Inf(-1)
	sawInf := false
	for _, f := range fields[3:] {
		var cStr string
		var bound float64
		switch {
		case strings.HasPrefix(f, "inf="):
			if sawInf {
				return fmt.Errorf("duplicate inf bucket")
			}
			sawInf = true
			cStr = f[len("inf="):]
		case strings.HasPrefix(f, "le"):
			if sawInf {
				return fmt.Errorf("bucket %q after inf bucket", f)
			}
			eq := strings.IndexByte(f, '=')
			if eq < 0 {
				return fmt.Errorf("bucket %q has no value", f)
			}
			b, err := strconv.ParseFloat(f[2:eq], 64)
			if err != nil {
				return fmt.Errorf("bucket bound in %q is not numeric", f)
			}
			bound = b
			if bound <= lastBound {
				return fmt.Errorf("bucket bounds not strictly increasing at %q", f)
			}
			lastBound = bound
			cStr = f[eq+1:]
		default:
			return fmt.Errorf("unrecognized bucket field %q", f)
		}
		c, err := strconv.ParseUint(cStr, 10, 64)
		if err != nil {
			return fmt.Errorf("bucket count in %q is not a non-negative integer", f)
		}
		bucketSum += c
	}
	if bucketSum != n {
		return fmt.Errorf("bucket counts sum to %d but n=%d", bucketSum, n)
	}
	return nil
}
