// Package obs is the deterministic observability plane of the simulated
// cluster: a sim-time-native span tracer (hierarchical spans exportable
// as Chrome trace_event JSON for chrome://tracing / Perfetto, or as a
// plain-text timeline) and a metrics registry (counters, gauges and
// fixed-bucket histograms with O(1) hot-path recording and a
// snapshot/diff API).
//
// Everything in this package records *virtual* time. Because the
// simulations are bit-for-bit deterministic and obs never consumes
// randomness, sends packets or feeds back into the simulation, the
// exported artifacts are byte-identical across runs — and, when sweeps
// fan out over eval.RunParallel, identical at every worker count
// (per-cell tracers merge in canonical cell order). The one amendment
// to the original "obs never schedules events" rule is the Sampler: it
// arms read-only tick events at whole multiples of its period — state-
// independent instants that cannot perturb packet timing, so the
// determinism contract holds unchanged (trace hashes fold packet
// events only).
//
// The plane is near-free when disabled: every method is nil-receiver
// safe, so instrumented code paths pay one pointer comparison and
// nothing else when no Obs is attached.
package obs

import "dvemig/internal/simtime"

// Clock yields the current virtual time; *simtime.Scheduler satisfies it.
type Clock interface {
	Now() simtime.Time
}

// Obs bundles one simulation run's tracer and metrics registry. A nil
// *Obs disables the whole plane (the hot paths check the single pointer
// and fall through).
type Obs struct {
	Trace   *Tracer
	Metrics *Registry
	// Sampler, when attached, streams the registry into time series at a
	// fixed sim-time cadence; Capture folds its artifacts in.
	Sampler *Sampler
}

// New creates an enabled observability plane on the given virtual clock.
func New(clock Clock) *Obs {
	return &Obs{Trace: NewTracer(clock), Metrics: NewRegistry()}
}

// T returns the tracer, nil when the plane is disabled.
func (o *Obs) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// M returns the registry, nil when the plane is disabled.
func (o *Obs) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Capture freezes the run's artifacts under a label: the tracer (which
// from here on should no longer be appended to) and a deterministic
// snapshot of the registry. Nil-safe; returns nil when disabled.
func (o *Obs) Capture(label string) *Capture {
	if o == nil {
		return nil
	}
	c := &Capture{Label: label, Trace: o.Trace, Snap: o.Metrics.Snapshot()}
	if o.Sampler != nil {
		c.Series = o.Sampler.Store()
		c.SamplePeriod = o.Sampler.Period
		if o.Sampler.slo != nil {
			c.SLO = o.Sampler.slo.Results()
		}
	}
	return c
}

// Capture is one run's exported observability artifact set.
type Capture struct {
	Label string
	Trace *Tracer
	Snap  *Snapshot
	// Series and SLO carry the sampler's artifacts when one was attached
	// (nil otherwise); SamplePeriod is its cadence.
	Series       *SeriesStore
	SamplePeriod simtime.Duration
	SLO          []*SLOResult
}
