// Package obs is the deterministic observability plane of the simulated
// cluster: a sim-time-native span tracer (hierarchical spans exportable
// as Chrome trace_event JSON for chrome://tracing / Perfetto, or as a
// plain-text timeline) and a metrics registry (counters, gauges and
// fixed-bucket histograms with O(1) hot-path recording and a
// snapshot/diff API).
//
// Everything in this package records *virtual* time. Because the
// simulations are bit-for-bit deterministic and obs never schedules
// events, consumes randomness or feeds back into the simulation, the
// exported artifacts are byte-identical across runs — and, when sweeps
// fan out over eval.RunParallel, identical at every worker count
// (per-cell tracers merge in canonical cell order).
//
// The plane is near-free when disabled: every method is nil-receiver
// safe, so instrumented code paths pay one pointer comparison and
// nothing else when no Obs is attached.
package obs

import "dvemig/internal/simtime"

// Clock yields the current virtual time; *simtime.Scheduler satisfies it.
type Clock interface {
	Now() simtime.Time
}

// Obs bundles one simulation run's tracer and metrics registry. A nil
// *Obs disables the whole plane (the hot paths check the single pointer
// and fall through).
type Obs struct {
	Trace   *Tracer
	Metrics *Registry
}

// New creates an enabled observability plane on the given virtual clock.
func New(clock Clock) *Obs {
	return &Obs{Trace: NewTracer(clock), Metrics: NewRegistry()}
}

// T returns the tracer, nil when the plane is disabled.
func (o *Obs) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// M returns the registry, nil when the plane is disabled.
func (o *Obs) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Capture freezes the run's artifacts under a label: the tracer (which
// from here on should no longer be appended to) and a deterministic
// snapshot of the registry. Nil-safe; returns nil when disabled.
func (o *Obs) Capture(label string) *Capture {
	if o == nil {
		return nil
	}
	return &Capture{Label: label, Trace: o.Trace, Snap: o.Metrics.Snapshot()}
}

// Capture is one run's exported observability artifact set.
type Capture struct {
	Label string
	Trace *Tracer
	Snap  *Snapshot
}
