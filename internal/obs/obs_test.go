package obs

import (
	"bytes"
	"strings"
	"testing"

	"dvemig/internal/simtime"
)

func TestNilPlaneIsNoOp(t *testing.T) {
	var o *Obs
	tr := o.T()
	m := o.M()
	if tr != nil || m != nil {
		t.Fatalf("nil Obs must hand out nil tracer/registry")
	}
	s := tr.Start("node1", "migration")
	s.SetAttr("k", "v")
	s.SetInt("n", 7)
	c := s.Child("precopy")
	c.Close()
	s.Close()
	tr.Instant("node1", "tick")
	tr.InstantAt(5, "node1", "tick")
	m.Counter("x").Inc()
	m.Counter("x").Add(3)
	m.Gauge("g").Set(1)
	m.Gauge("g").Add(1)
	m.Histogram("h", DurationBucketsUs).Observe(12)
	if m.Counter("x").Value() != 0 || m.Gauge("g").Value() != 0 || m.Histogram("h", nil).Count() != 0 {
		t.Fatalf("nil handles must read zero")
	}
	if o.Capture("x") != nil {
		t.Fatalf("nil Obs.Capture must be nil")
	}
}

func TestSpanHierarchyAndDurations(t *testing.T) {
	sched := simtime.NewScheduler()
	o := New(sched)
	root := o.T().Start("node1", "migration")
	sched.After(10e6, "step", func() {})
	sched.Run()
	child := root.Child("precopy")
	if child.Parent != root {
		t.Fatalf("child parent not set")
	}
	sched.After(5e6, "step", func() {})
	sched.Run()
	child.Close()
	if child.Open() {
		t.Fatalf("ended span still open")
	}
	if got := child.Duration(); got != 5e6 {
		t.Fatalf("child duration = %v, want 5e6", got)
	}
	// root still open: duration runs to high-water mark
	if got := root.Duration(); got != 15e6 {
		t.Fatalf("open root duration = %v, want 15e6", got)
	}
	sched.After(1e6, "step", func() {})
	sched.Run()
	root.Close()
	if got := root.Duration(); got != 16e6 {
		t.Fatalf("root duration = %v, want 16e6", got)
	}
	// closing an already closed span is a no-op
	if root.Close(); root.Duration() != 16e6 {
		t.Fatalf("double Close changed duration")
	}
	if root.CloseAt(99e6); root.End != 16e6 {
		t.Fatalf("CloseAt on closed span changed End to %v", root.End)
	}
}

func TestCloseOpenClampsToHighWater(t *testing.T) {
	sched := simtime.NewScheduler()
	o := New(sched)
	s := o.T().Start("n", "dangling")
	o.T().InstantAt(42e6, "n", "late")
	o.T().closeOpen()
	if s.Open() || s.End != 42e6 {
		t.Fatalf("open span must close at high-water mark, got end=%v open=%v", s.End, s.Open())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100})
	for _, v := range []float64{5, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hp, ok := snap.Hist("lat")
	if !ok {
		t.Fatalf("histogram missing from snapshot")
	}
	want := []uint64{2, 2, 1} // ≤10: {5,10}; ≤100: {11,100}; +Inf: {1000}
	for i, w := range want {
		if hp.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hp.Counts[i], w, hp.Counts)
		}
	}
	if hp.N != 5 || hp.Sum != 1126 {
		t.Fatalf("N=%d Sum=%v", hp.N, hp.Sum)
	}
	if got := hp.Mean(); got != 1126.0/5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Histogram("h", []float64{10}).Observe(5)
	prev := r.Snapshot()
	r.Counter("c").Add(4)
	r.Gauge("g").Set(9)
	r.Histogram("h", nil).Observe(50)
	d := r.Snapshot().Diff(prev)
	if v, _ := d.Counter("c"); v != 4 {
		t.Fatalf("diff counter = %d, want 4", v)
	}
	hp, _ := d.Hist("h")
	if hp.N != 1 || hp.Sum != 50 || hp.Counts[0] != 0 || hp.Counts[1] != 1 {
		t.Fatalf("diff hist = %+v", hp)
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Value != 9 {
		t.Fatalf("diff gauges = %+v", d.Gauges)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(1)
	a.Histogram("h", []float64{10}).Observe(5)
	b := NewRegistry()
	b.Counter("c").Add(2)
	b.Counter("only_b").Inc()
	b.Histogram("h", []float64{10}).Observe(50)
	m, err := MergeSnapshots(a.Snapshot(), nil, b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Counter("c"); v != 3 {
		t.Fatalf("merged c = %d", v)
	}
	if v, _ := m.Counter("only_b"); v != 1 {
		t.Fatalf("merged only_b = %d", v)
	}
	hp, _ := m.Hist("h")
	if hp.N != 2 || hp.Sum != 55 || hp.Counts[0] != 1 || hp.Counts[1] != 1 {
		t.Fatalf("merged hist = %+v", hp)
	}
	// merge is independent of argument grouping when order is preserved
	ma, err := MergeSnapshots(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MergeSnapshots(ma, b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Text() != m2.Text() {
		t.Fatalf("merge not associative:\n%s\nvs\n%s", m.Text(), m2.Text())
	}
}

func TestMergeSnapshotsEdgeCases(t *testing.T) {
	// Empty input: a valid, empty snapshot — not nil, not an error.
	m, err := MergeSnapshots()
	if err != nil || m == nil || len(m.Counters) != 0 || len(m.Hists) != 0 {
		t.Fatalf("empty merge = %+v, %v", m, err)
	}
	// All-nil input behaves like empty input.
	if m, err = MergeSnapshots(nil, nil); err != nil || m == nil {
		t.Fatalf("all-nil merge = %+v, %v", m, err)
	}

	// Disjoint metric sets: union, nothing dropped.
	a := NewRegistry()
	a.Counter("alpha").Add(3)
	a.Histogram("ha", []float64{1, 2}).Observe(1.5)
	b := NewRegistry()
	b.Counter("beta").Add(4)
	b.Gauge("gb").Set(7)
	m, err = MergeSnapshots(a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Counter("alpha"); !ok || v != 3 {
		t.Fatalf("alpha = %d/%v", v, ok)
	}
	if v, ok := m.Counter("beta"); !ok || v != 4 {
		t.Fatalf("beta = %d/%v", v, ok)
	}
	if hp, ok := m.Hist("ha"); !ok || hp.N != 1 {
		t.Fatalf("ha = %+v/%v", hp, ok)
	}
	if len(m.Gauges) != 1 || m.Gauges[0].Value != 7 {
		t.Fatalf("gauges = %+v", m.Gauges)
	}

	// Histogram bucket-boundary mismatch must be an error, not a silent
	// merge of incompatible counts.
	c := NewRegistry()
	c.Histogram("ha", []float64{1, 5}).Observe(1.5)
	if _, err = MergeSnapshots(a.Snapshot(), c.Snapshot()); err == nil {
		t.Fatal("bucket-boundary mismatch silently merged")
	}
	d := NewRegistry()
	d.Histogram("ha", []float64{1, 2, 3}).Observe(1.5)
	if _, err = MergeSnapshots(a.Snapshot(), d.Snapshot()); err == nil {
		t.Fatal("bucket-count mismatch silently merged")
	}
}

func TestChromeTraceExportValidatesAndIsDeterministic(t *testing.T) {
	build := func() *Capture {
		sched := simtime.NewScheduler()
		o := New(sched)
		root := o.T().Start("node1", "migration")
		root.SetInt("pid", 101)
		sched.After(2e6, "x", func() {})
		sched.Run()
		pre := root.Child("precopy")
		o.T().Instant("node2", "fault", Attr{"kind", "drop"})
		sched.After(3e6, "x", func() {})
		sched.Run()
		pre.Close()
		root.Close()
		o.M().Counter("c").Inc()
		return o.Capture("run")
	}
	var b1, b2 bytes.Buffer
	if err := WriteChromeTrace(&b1, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b2, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("chrome trace not deterministic")
	}
	if err := ValidateChromeTrace(b1.Bytes()); err != nil {
		t.Fatalf("export fails own validation: %v", err)
	}
	var tl bytes.Buffer
	if err := WriteTimeline(&tl, build()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"migration", "precopy", "* fault", "kind=drop"} {
		if !strings.Contains(tl.String(), want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl.String())
		}
	}
}

func TestValidateChromeTraceRejectsBadDocs(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"no array":      `{}`,
		"missing field": `{"traceEvents":[{"ph":"X","ts":1,"pid":1}]}`,
		"bad ts":        `{"traceEvents":[{"name":"a","ph":"X","ts":"x","pid":1}]}`,
		"x without dur": `{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1}]}`,
		"no spans":      `{"traceEvents":[{"name":"a","ph":"i","ts":1,"pid":1}]}`,
	}
	for name, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

func TestWriteMetricsText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(0.5)
	r.Histogram("h", []float64{10}).Observe(3)
	c := &Capture{Label: "L", Snap: r.Snapshot()}
	var b bytes.Buffer
	if err := WriteMetricsText(&b, c, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "=== L ===") {
		t.Fatalf("missing label:\n%s", out)
	}
	if strings.Index(out, "a ") > strings.Index(out, "b ") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	for _, want := range []string{"# counters", "# gauges", "# histograms", "n=1 sum=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
