package obs

import "dvemig/internal/simtime"

// Attr is one key/value annotation on a span or instant event.
type Attr struct {
	Key, Val string
}

// Span is one timed operation. Spans form a hierarchy (migration →
// precopy round N → …; failover → election → activation) through their
// Parent pointer; on export, spans that share a Track nest visually by
// containment. All times are virtual.
type Span struct {
	Name  string
	Track string // rendering lane, typically the node name
	Start simtime.Time
	End   simtime.Time
	Attrs []Attr

	Parent *Span

	tr   *Tracer
	open bool
}

// Instant is a point annotation (a fault firing, a detector flip, an
// epoch bump) on a track.
type Instant struct {
	At    simtime.Time
	Track string
	Name  string
	Attrs []Attr
}

// Tracer records spans and instants of one simulation run in creation
// order (which, on a single-threaded event loop, is deterministic).
type Tracer struct {
	clock Clock

	// Spans in creation order; Instants in record order. Exported for
	// programmatic inspection (the timeline/Chrome exporters consume
	// them too).
	Spans    []*Span
	Instants []Instant

	// last is the high-water mark of recorded time; spans still open at
	// export time implicitly close here.
	last simtime.Time
}

// NewTracer creates a tracer on the given virtual clock.
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

func (t *Tracer) note(at simtime.Time) {
	if at > t.last {
		t.last = at
	}
}

// Start opens a root span on a track. Nil-safe: returns nil on a nil
// tracer, and all Span methods are nil-safe in turn.
func (t *Tracer) Start(track, name string) *Span {
	return t.startAt(track, name, nil)
}

func (t *Tracer) startAt(track, name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	now := t.clock.Now()
	s := &Span{Name: name, Track: track, Start: now, Parent: parent, tr: t, open: true}
	t.Spans = append(t.Spans, s)
	t.note(now)
	return s
}

// Instant records a point event at the current virtual time.
func (t *Tracer) Instant(track, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.InstantAt(t.clock.Now(), track, name, attrs...)
}

// InstantAt records a point event with an explicit timestamp. Fault
// scripts use it to annotate windows that are armed before the
// simulation starts without scheduling anything (obs must never perturb
// the event queue).
func (t *Tracer) InstantAt(at simtime.Time, track, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.Instants = append(t.Instants, Instant{At: at, Track: track, Name: name, Attrs: attrs})
	t.note(at)
}

// Child opens a sub-span on the same track.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startAt(s.Track, name, s)
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// SetInt annotates the span with an integer rendered in decimal.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: itoa(v)})
}

// CloseAt closes the span at an explicit virtual time.
func (s *Span) CloseAt(at simtime.Time) {
	if s == nil || !s.open {
		return
	}
	s.open = false
	s.End = at
	s.tr.note(at)
}

// Close ends the span at the current virtual time. Closing an already
// closed (or nil) span is a no-op.
func (s *Span) Close() {
	if s == nil || !s.open {
		return
	}
	s.CloseAt(s.tr.clock.Now())
}

// Open reports whether the span is still running.
func (s *Span) Open() bool { return s != nil && s.open }

// Duration returns End-Start for a closed span, time-to-high-water for
// an open one.
func (s *Span) Duration() simtime.Duration {
	if s == nil {
		return 0
	}
	if s.open {
		return s.tr.last - s.Start
	}
	return s.End - s.Start
}

// closeOpen implicitly ends every still-open span at the tracer's
// high-water mark; exporters call it so artifacts never contain
// dangling begins.
func (t *Tracer) closeOpen() {
	if t == nil {
		return
	}
	for _, s := range t.Spans {
		if s.open {
			s.open = false
			s.End = t.last
			if s.End < s.Start {
				s.End = s.Start
			}
		}
	}
}

// itoa is a minimal allocation-conscious int formatter (avoids pulling
// strconv into the hot path signature; values are small).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
