package obs

import "dvemig/internal/simtime"

// Attr is one key/value annotation on a span or instant event.
type Attr struct {
	Key, Val string
}

// Span is one timed operation. Spans form a hierarchy (migration →
// precopy round N → …; failover → election → activation) through their
// Parent pointer; on export, spans that share a Track nest visually by
// containment. All times are virtual.
type Span struct {
	Name  string
	Track string // rendering lane, typically the node name
	Start simtime.Time
	End   simtime.Time
	Attrs []Attr

	Parent *Span

	// ID is the 1-based creation index of the span within its tracer —
	// deterministic on the single-threaded event loop and stable across
	// runs. TraceID is the ID of the root span of the causal tree this
	// span belongs to: a plain Start roots a new trace (TraceID == ID),
	// Child and StartLinked inherit the parent's TraceID, so every span
	// of one end-to-end migration shares the root migration span's ID.
	ID      uint64
	TraceID uint64

	tr   *Tracer
	open bool
}

// TraceContext is the compact causal coordinate of a span — just the
// trace ID and the span's own ID — small enough to ride on control
// messages (16 bytes on the wire) and to stamp onto packets as
// out-of-band metadata. The zero value means "no context".
type TraceContext struct {
	Trace uint64 // TraceID of the causal tree
	Span  uint64 // ID of the span acting as parent
}

// Valid reports whether the context names a real span.
func (tc TraceContext) Valid() bool { return tc.Span != 0 }

// Context returns the span's causal coordinate for propagation across
// node boundaries. Nil-safe: a nil span yields the zero context, which
// StartLinked treats as "root a fresh trace".
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{Trace: s.TraceID, Span: s.ID}
}

// Instant is a point annotation (a fault firing, a detector flip, an
// epoch bump) on a track.
type Instant struct {
	At    simtime.Time
	Track string
	Name  string
	Attrs []Attr
}

// Tracer records spans and instants of one simulation run in creation
// order (which, on a single-threaded event loop, is deterministic).
type Tracer struct {
	clock Clock

	// Spans in creation order; Instants in record order. Exported for
	// programmatic inspection (the timeline/Chrome exporters consume
	// them too).
	Spans    []*Span
	Instants []Instant

	// last is the high-water mark of recorded time; spans still open at
	// export time implicitly close here.
	last simtime.Time
}

// NewTracer creates a tracer on the given virtual clock.
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

func (t *Tracer) note(at simtime.Time) {
	if at > t.last {
		t.last = at
	}
}

// Start opens a root span on a track. Nil-safe: returns nil on a nil
// tracer, and all Span methods are nil-safe in turn.
func (t *Tracer) Start(track, name string) *Span {
	return t.startAt(track, name, nil)
}

func (t *Tracer) startAt(track, name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	now := t.clock.Now()
	s := &Span{Name: name, Track: track, Start: now, Parent: parent, tr: t, open: true}
	s.ID = uint64(len(t.Spans) + 1)
	if parent != nil {
		s.TraceID = parent.TraceID
	} else {
		s.TraceID = s.ID
	}
	t.Spans = append(t.Spans, s)
	t.note(now)
	return s
}

// StartLinked opens a span whose causal parent arrived from another
// node as a TraceContext (e.g. carried on a migd control message). If
// the context resolves to a recorded span, the new span parents into it
// and inherits its trace ID — even across tracks — so the destination's
// restore tree hangs off the source's migration root in one connected
// trace. An invalid or foreign context roots a fresh trace, exactly
// like Start.
func (t *Tracer) StartLinked(track, name string, ctx TraceContext) *Span {
	if t == nil {
		return nil
	}
	return t.startAt(track, name, t.Lookup(ctx))
}

// Lookup resolves a TraceContext back to the span it names, or nil if
// the context is zero or does not belong to this tracer.
func (t *Tracer) Lookup(ctx TraceContext) *Span {
	if t == nil || ctx.Span == 0 || ctx.Span > uint64(len(t.Spans)) {
		return nil
	}
	s := t.Spans[ctx.Span-1]
	if s.TraceID != ctx.Trace {
		return nil
	}
	return s
}

// Instant records a point event at the current virtual time.
func (t *Tracer) Instant(track, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.InstantAt(t.clock.Now(), track, name, attrs...)
}

// InstantAt records a point event with an explicit timestamp. Fault
// scripts use it to annotate windows that are armed before the
// simulation starts without scheduling anything (obs must never perturb
// the event queue).
func (t *Tracer) InstantAt(at simtime.Time, track, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.Instants = append(t.Instants, Instant{At: at, Track: track, Name: name, Attrs: attrs})
	t.note(at)
}

// Child opens a sub-span on the same track.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startAt(s.Track, name, s)
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// SetInt annotates the span with an integer rendered in decimal.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: itoa(v)})
}

// CloseAt closes the span at an explicit virtual time.
func (s *Span) CloseAt(at simtime.Time) {
	if s == nil || !s.open {
		return
	}
	s.open = false
	s.End = at
	s.tr.note(at)
}

// Close ends the span at the current virtual time. Closing an already
// closed (or nil) span is a no-op.
func (s *Span) Close() {
	if s == nil || !s.open {
		return
	}
	s.CloseAt(s.tr.clock.Now())
}

// Open reports whether the span is still running.
func (s *Span) Open() bool { return s != nil && s.open }

// Duration returns End-Start for a closed span, time-to-high-water for
// an open one.
func (s *Span) Duration() simtime.Duration {
	if s == nil {
		return 0
	}
	if s.open {
		return s.tr.last - s.Start
	}
	return s.End - s.Start
}

// closeOpen implicitly ends every still-open span at the tracer's
// high-water mark; exporters call it so artifacts never contain
// dangling begins.
func (t *Tracer) closeOpen() {
	if t == nil {
		return
	}
	for _, s := range t.Spans {
		if s.open {
			s.open = false
			s.End = t.last
			if s.End < s.Start {
				s.End = s.Start
			}
		}
	}
}

// itoa is a minimal allocation-conscious int formatter (avoids pulling
// strconv into the hot path signature; values are small).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
