package obs

import "fmt"

// The SLO engine evaluates service-level objectives over sampled
// windows, the migration survey's comparison axis (downtime SLOs, not
// averages). Each objective is either a percentile bound on a histogram
// (p99 migration downtime ≤ X µs) or a ratio bound between two counters
// (aborts per terminal object ≤ Y). Alongside the single-window breach
// count it keeps multi-window burn rates — the SRE pattern scaled to
// sim cadence: a short window catches a sharp regression, a long one a
// slow leak that never trips any single sample.

// DefaultBurnWindows are the burn-rate accounting window lengths, in
// samples.
var DefaultBurnWindows = []int{1, 6, 24}

// Objective declares one SLO. Exactly one of Hist or Bad/Total is set.
type Objective struct {
	Name string
	// Percentile objective: the Pct-th percentile of histogram Hist must
	// stay ≤ Max (Max in the histogram's sample unit).
	Hist string
	Pct  float64
	// Ratio objective: counter Bad over counter Total must stay ≤ Max.
	Bad, Total string
	// Max is the objective's threshold.
	Max float64
	// Windows are the burn window lengths in samples (nil selects
	// DefaultBurnWindows).
	Windows []int
}

// WindowBurn is the worst burn rate observed over any window of one
// length. Burn rate is the window's value divided by Max: 1.0 means
// exactly on target, above 1.0 the objective is burning.
type WindowBurn struct {
	Len    int
	Peak   float64
	PeakAt int // index of the sample window where the peak window ended; -1 when no data
}

// SLOResult is one objective's verdict after a run.
type SLOResult struct {
	Name      string
	Objective Objective
	// Samples is how many windows were observed.
	Samples int
	// Overall is the full-run value (the cumulative percentile or ratio);
	// Met reports Overall ≤ Max.
	Overall float64
	Met     bool
	// BreachWindows counts single sample windows whose value exceeded
	// Max; FirstBreach is the first such window's index (-1 when none).
	BreachWindows int
	FirstBreach   int
	// Burns holds the per-length burn-rate peaks, in Windows order.
	Burns []WindowBurn
}

type sloState struct {
	obj     Objective
	windows []int
	// Per-window deltas, bounded by the longest burn window.
	hists  []HistPoint  // percentile objectives
	ratios [][2]float64 // ratio objectives: {badΔ, totalΔ}
	maxW   int

	samples     int
	lastCum     *Snapshot
	breaches    int
	firstBreach int
	burns       []WindowBurn
}

// SLOEngine evaluates a fixed set of objectives over sample windows —
// hang it on a Sampler via AttachSLO, or drive Observe directly.
type SLOEngine struct {
	states []*sloState
}

// NewSLOEngine creates an engine over the given objectives.
func NewSLOEngine(objs ...Objective) *SLOEngine {
	e := &SLOEngine{}
	for _, o := range objs {
		ws := o.Windows
		if len(ws) == 0 {
			ws = DefaultBurnWindows
		}
		maxW := 0
		burns := make([]WindowBurn, len(ws))
		for i, w := range ws {
			if w > maxW {
				maxW = w
			}
			burns[i] = WindowBurn{Len: w, PeakAt: -1}
		}
		e.states = append(e.states, &sloState{
			obj: o, windows: ws, maxW: maxW, firstBreach: -1, burns: burns,
		})
	}
	return e
}

// Observe folds one sample window into every objective.
func (e *SLOEngine) Observe(w SampleWindow) {
	if e == nil {
		return
	}
	for _, st := range e.states {
		st.observe(w)
	}
}

func (st *sloState) observe(w SampleWindow) {
	st.samples++
	st.lastCum = w.Cum
	// Record this window's delta, evicting past the longest burn window.
	if st.obj.Hist != "" {
		h, _ := w.Delta.Hist(st.obj.Hist)
		st.hists = append(st.hists, h)
		if len(st.hists) > st.maxW {
			st.hists = st.hists[1:]
		}
	} else {
		bad, _ := w.Delta.Counter(st.obj.Bad)
		tot, _ := w.Delta.Counter(st.obj.Total)
		st.ratios = append(st.ratios, [2]float64{float64(bad), float64(tot)})
		if len(st.ratios) > st.maxW {
			st.ratios = st.ratios[1:]
		}
	}
	if v, ok := st.windowValue(1); ok && v > st.obj.Max {
		st.breaches++
		if st.firstBreach < 0 {
			st.firstBreach = w.Index
		}
	}
	for i, bw := range st.windows {
		v, ok := st.windowValue(bw)
		if !ok || st.obj.Max <= 0 {
			continue
		}
		if burn := v / st.obj.Max; burn > st.burns[i].Peak {
			st.burns[i].Peak = burn
			st.burns[i].PeakAt = w.Index
		}
	}
}

// windowValue evaluates the objective over the last n windows (or as
// many as exist); ok is false when the span holds no observations.
func (st *sloState) windowValue(n int) (float64, bool) {
	if st.obj.Hist != "" {
		if len(st.hists) == 0 {
			return 0, false
		}
		lo := len(st.hists) - n
		if lo < 0 {
			lo = 0
		}
		merged := HistPoint{}
		for _, h := range st.hists[lo:] {
			if h.N == 0 {
				continue
			}
			if merged.Counts == nil {
				merged.Bounds = h.Bounds
				merged.Counts = append([]uint64(nil), h.Counts...)
				merged.Sum, merged.N = h.Sum, h.N
				continue
			}
			for i := range h.Counts {
				merged.Counts[i] += h.Counts[i]
			}
			merged.Sum += h.Sum
			merged.N += h.N
		}
		if merged.N == 0 {
			return 0, false
		}
		return merged.Percentile(st.obj.Pct), true
	}
	if len(st.ratios) == 0 {
		return 0, false
	}
	lo := len(st.ratios) - n
	if lo < 0 {
		lo = 0
	}
	var bad, tot float64
	for _, r := range st.ratios[lo:] {
		bad += r[0]
		tot += r[1]
	}
	if tot == 0 {
		return 0, false
	}
	return bad / tot, true
}

// Results renders every objective's verdict, in declaration order. The
// overall value comes from the last window's cumulative snapshot, so
// call after the final window (Sampler.Flush) for full-run coverage.
func (e *SLOEngine) Results() []*SLOResult {
	if e == nil {
		return nil
	}
	out := make([]*SLOResult, 0, len(e.states))
	for _, st := range e.states {
		r := &SLOResult{
			Name: st.obj.Name, Objective: st.obj, Samples: st.samples,
			BreachWindows: st.breaches, FirstBreach: st.firstBreach,
			Burns: append([]WindowBurn(nil), st.burns...),
		}
		if st.lastCum != nil {
			if st.obj.Hist != "" {
				r.Overall, _ = st.lastCum.HistogramPercentile(st.obj.Hist, st.obj.Pct)
			} else {
				bad, _ := st.lastCum.Counter(st.obj.Bad)
				tot, _ := st.lastCum.Counter(st.obj.Total)
				if tot > 0 {
					r.Overall = float64(bad) / float64(tot)
				}
			}
		}
		r.Met = r.Overall <= st.obj.Max
		out = append(out, r)
	}
	return out
}

// String renders one verdict compactly for logs and tables.
func (r *SLOResult) String() string {
	verdict := "met"
	if !r.Met {
		verdict = "MISSED"
	}
	s := fmt.Sprintf("%s: %s (%.4g vs max %.4g over %d windows, %d breaches",
		r.Name, verdict, r.Overall, r.Objective.Max, r.Samples, r.BreachWindows)
	for _, b := range r.Burns {
		s += fmt.Sprintf(", burn%d=%.2f", b.Len, b.Peak)
	}
	return s + ")"
}
