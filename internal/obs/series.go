package obs

import (
	"fmt"

	"dvemig/internal/simtime"
)

// This file is the streaming half of the observability plane: a
// sim-time-driven Sampler that periodically snapshots the registry into
// bounded ring-buffered time series, so a long soak exposes *when* a
// metric degraded instead of only its end-of-run aggregate.
//
// Determinism contract: sample instants are whole multiples of the
// period (Ticker.StartAligned), the sampler only reads simulation state
// — it schedules its own tick events but never sends packets, consumes
// randomness or mutates anything outside the registry — and snapshot
// iteration is name-sorted. Series artifacts are therefore
// byte-identical across runs and, per-cell, at every sweep worker
// count. The disabled path (nil *Sampler) is allocation-free: every
// method is a nil-receiver no-op.

// SeriesKind tags what a time series was sampled from; validators use
// it to apply per-kind invariants (counter series must be monotonic).
type SeriesKind string

const (
	SeriesCounter   SeriesKind = "counter"  // cumulative counter value
	SeriesGauge     SeriesKind = "gauge"    // instantaneous gauge value
	SeriesHistCount SeriesKind = "hist-n"   // cumulative observation count
	SeriesHistP99   SeriesKind = "hist-p99" // per-window p99 estimate (0 on empty windows)
)

// TimeSeries is one metric's bounded sample ring: the last max points,
// oldest evicted first. Appends are amortized O(1) with no steady-state
// allocation once the ring is full.
type TimeSeries struct {
	Name string
	Kind SeriesKind

	max   int
	times []simtime.Time
	vals  []float64
	n     uint64 // total points ever appended (retained + evicted)
}

// Append records one point. Timestamps must be strictly increasing;
// the sampler guarantees this by construction.
func (ts *TimeSeries) Append(at simtime.Time, v float64) {
	if ts == nil {
		return
	}
	if len(ts.times) < ts.max {
		ts.times = append(ts.times, at)
		ts.vals = append(ts.vals, v)
	} else {
		i := int(ts.n % uint64(ts.max))
		ts.times[i] = at
		ts.vals[i] = v
	}
	ts.n++
}

// Len reports how many points are currently retained.
func (ts *TimeSeries) Len() int {
	if ts == nil {
		return 0
	}
	return len(ts.times)
}

// Total reports how many points were ever appended (retained + evicted).
func (ts *TimeSeries) Total() uint64 {
	if ts == nil {
		return 0
	}
	return ts.n
}

// Points returns the retained window oldest-first, as parallel copies.
func (ts *TimeSeries) Points() ([]simtime.Time, []float64) {
	if ts == nil || len(ts.times) == 0 {
		return nil, nil
	}
	t := make([]simtime.Time, 0, len(ts.times))
	v := make([]float64, 0, len(ts.vals))
	if len(ts.times) < ts.max || ts.n == uint64(len(ts.times)) {
		t = append(t, ts.times...)
		v = append(v, ts.vals...)
		return t, v
	}
	head := int(ts.n % uint64(ts.max)) // oldest slot
	t = append(append(t, ts.times[head:]...), ts.times[:head]...)
	v = append(append(v, ts.vals[head:]...), ts.vals[:head]...)
	return t, v
}

// Last returns the most recent point; ok is false when empty.
func (ts *TimeSeries) Last() (simtime.Time, float64, bool) {
	if ts == nil || ts.n == 0 {
		return 0, 0, false
	}
	i := int((ts.n - 1) % uint64(ts.max))
	return ts.times[i], ts.vals[i], true
}

// SeriesStore owns a run's time series, keyed by name in first-seen
// order. Because the sampler walks name-sorted snapshots and metric
// sets are state-driven, the order is deterministic.
type SeriesStore struct {
	// Max bounds each series' retained points (default 512).
	Max    int
	order  []string
	byName map[string]*TimeSeries
}

// NewSeriesStore creates an empty store whose series each retain up to
// maxSamples points (≤0 selects the default 512).
func NewSeriesStore(maxSamples int) *SeriesStore {
	if maxSamples <= 0 {
		maxSamples = 512
	}
	return &SeriesStore{Max: maxSamples, byName: make(map[string]*TimeSeries)}
}

// get returns (creating if needed) the named series.
func (st *SeriesStore) get(name string, kind SeriesKind) *TimeSeries {
	ts := st.byName[name]
	if ts == nil {
		ts = &TimeSeries{Name: name, Kind: kind, max: st.Max}
		st.byName[name] = ts
		st.order = append(st.order, name)
	}
	return ts
}

// Series returns the named series, nil when absent or on a nil store.
func (st *SeriesStore) Series(name string) *TimeSeries {
	if st == nil {
		return nil
	}
	return st.byName[name]
}

// Names lists the series names in first-seen order.
func (st *SeriesStore) Names() []string {
	if st == nil {
		return nil
	}
	return append([]string(nil), st.order...)
}

// Len reports the number of series.
func (st *SeriesStore) Len() int {
	if st == nil {
		return 0
	}
	return len(st.order)
}

// MergeSeriesStores sums stores element-wise by (series name, sample
// index) — the cross-cell aggregation a sweep report wants for
// counter-backed series. Ragged lengths are fine: the merged series is
// as long as its longest contributor, with timestamps taken from the
// longest contributor (ties: first in argument order). Past a shorter
// contributor's end, cumulative kinds (counter, hist-n) carry their
// final value forward — a cell that finished early still counts its
// total, and the merged series stays monotonic — while instantaneous
// kinds (gauge, hist-p99) contribute zero. Nil stores are skipped; a
// kind mismatch under one name means the cells were configured
// differently and is an error.
func MergeSeriesStores(stores ...*SeriesStore) (*SeriesStore, error) {
	max := 0
	for _, st := range stores {
		if st != nil && st.Max > max {
			max = st.Max
		}
	}
	out := NewSeriesStore(max)
	type part struct {
		times []simtime.Time
		vals  []float64
	}
	type acc struct {
		kind  SeriesKind
		parts []part
		total uint64
	}
	accs := map[string]*acc{}
	for _, st := range stores {
		if st == nil {
			continue
		}
		for _, name := range st.order {
			ts := st.byName[name]
			a := accs[name]
			if a == nil {
				a = &acc{kind: ts.Kind}
				accs[name] = a
				out.order = append(out.order, name)
			}
			if a.kind != ts.Kind {
				return nil, fmt.Errorf("obs: series %q kind mismatch across stores (%s vs %s)",
					name, a.kind, ts.Kind)
			}
			t, v := ts.Points()
			a.parts = append(a.parts, part{times: t, vals: v})
			if ts.n > a.total {
				a.total = ts.n
			}
		}
	}
	for _, name := range out.order {
		a := accs[name]
		carry := a.kind == SeriesCounter || a.kind == SeriesHistCount
		var times []simtime.Time
		for _, p := range a.parts {
			if len(p.times) > len(times) {
				times = p.times
			}
		}
		vals := make([]float64, len(times))
		for _, p := range a.parts {
			for i := range vals {
				switch {
				case i < len(p.vals):
					vals[i] += p.vals[i]
				case carry && len(p.vals) > 0:
					vals[i] += p.vals[len(p.vals)-1]
				}
			}
		}
		out.byName[name] = &TimeSeries{
			Name: name, Kind: a.kind, max: out.Max,
			times: times, vals: vals, n: a.total,
		}
	}
	return out, nil
}

// SampleWindow is what one sample boundary hands to OnSample hooks: the
// window's half-open sim-time range, its 0-based index, the cumulative
// registry snapshot at the boundary and the delta against the previous
// boundary.
type SampleWindow struct {
	Index    int
	From, To simtime.Time
	Cum      *Snapshot
	Delta    *Snapshot
}

// Sampler drives periodic sampling on the virtual clock: every period
// it harvests (optionally), snapshots the registry, appends each metric
// to its ring series and fires the OnSample hooks — the attachment
// point for incremental audits and the SLO engine. A nil *Sampler is
// the disabled plane: every method no-ops without allocating.
type Sampler struct {
	// Period is the sample cadence; ticks land on whole multiples of it.
	Period simtime.Duration
	// Harvest, when set, scrapes lower-layer totals into the registry
	// before each snapshot. It must use absolute (Store/Set) semantics so
	// re-harvesting every window is idempotent.
	Harvest func(*Registry)

	sched   *simtime.Scheduler
	reg     *Registry
	store   *SeriesStore
	ticker  *simtime.Ticker
	hooks   []func(SampleWindow)
	slo     *SLOEngine
	prev    *Snapshot
	prevAt  simtime.Time
	windows int
}

// NewSampler creates a stopped sampler on the scheduler's clock. reg
// may be nil (audit-only sampling: hooks still fire with empty
// snapshots). maxSamples bounds each series' ring (≤0 → 512). The
// period must be positive.
func NewSampler(sched *simtime.Scheduler, reg *Registry, period simtime.Duration, maxSamples int) *Sampler {
	if period <= 0 {
		panic("obs: sampler period must be positive")
	}
	s := &Sampler{Period: period, sched: sched, reg: reg, store: NewSeriesStore(maxSamples)}
	s.ticker = simtime.NewTicker(sched, period, "obs.sample", func() { s.emit(sched.Now()) })
	return s
}

// OnSample registers a hook fired at every sample boundary, in
// registration order. Hooks must not feed back into the simulation.
func (s *Sampler) OnSample(fn func(SampleWindow)) {
	if s == nil || fn == nil {
		return
	}
	s.hooks = append(s.hooks, fn)
}

// AttachSLO subscribes an SLO engine to every sample window; its
// results ride along in Capture.SLO.
func (s *Sampler) AttachSLO(e *SLOEngine) {
	if s == nil || e == nil {
		return
	}
	s.slo = e
	s.OnSample(e.Observe)
}

// Start arms the sampler. Ticks land on whole multiples of Period
// regardless of when Start is called — the determinism anchor that
// keeps sample instants independent of construction order.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.ticker.StartAligned()
}

// Stop disarms the tick; already-recorded series stay readable. Call
// Flush afterwards to close the final partial window.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.ticker.Stop()
}

// Flush emits one final partial window covering [last boundary, now),
// so the tail of a run — teardown and drain included — is sampled and
// audited like every full window. No-op when the clock has not
// advanced past the last boundary.
func (s *Sampler) Flush() {
	if s == nil {
		return
	}
	if now := s.sched.Now(); now > s.prevAt {
		s.emit(now)
	}
}

// Store returns the accumulated series (nil when disabled).
func (s *Sampler) Store() *SeriesStore {
	if s == nil {
		return nil
	}
	return s.store
}

// Windows reports how many sample windows have been emitted.
func (s *Sampler) Windows() int {
	if s == nil {
		return 0
	}
	return s.windows
}

// emit closes the window ending at to: harvest, snapshot, append every
// metric to its series, then fire the hooks.
func (s *Sampler) emit(to simtime.Time) {
	if s.Harvest != nil {
		s.Harvest(s.reg)
	}
	cum := s.reg.Snapshot()
	delta := cum.Diff(s.prev)
	for _, c := range cum.Counters {
		s.store.get(c.Name, SeriesCounter).Append(to, float64(c.Value))
	}
	for _, g := range cum.Gauges {
		s.store.get(g.Name, SeriesGauge).Append(to, g.Value)
	}
	for _, h := range cum.Hists {
		s.store.get(h.Name+"/n", SeriesHistCount).Append(to, float64(h.N))
	}
	for _, h := range delta.Hists {
		s.store.get(h.Name+"/p99", SeriesHistP99).Append(to, h.Percentile(99))
	}
	w := SampleWindow{Index: s.windows, From: s.prevAt, To: to, Cum: cum, Delta: delta}
	s.windows++
	s.prev, s.prevAt = cum, to
	for _, fn := range s.hooks {
		fn(w)
	}
}
