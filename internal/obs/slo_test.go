package obs

import (
	"math"
	"strings"
	"testing"
)

// histWindow builds a SampleWindow whose delta holds one histogram with
// the given observations and whose cum holds the running union.
type sloFeeder struct {
	bounds []float64
	cumReg *Registry
	idx    int
	prev   *Snapshot
}

func newSLOFeeder(bounds []float64) *sloFeeder {
	return &sloFeeder{bounds: bounds, cumReg: NewRegistry(), prev: (&Snapshot{})}
}

// window observes vals into the cumulative histogram and emits the next
// SampleWindow, mirroring what the Sampler does.
func (f *sloFeeder) window(vals ...float64) SampleWindow {
	h := f.cumReg.Histogram("lat", f.bounds)
	for _, v := range vals {
		h.Observe(v)
	}
	cum := f.cumReg.Snapshot()
	w := SampleWindow{Index: f.idx, Cum: cum, Delta: cum.Diff(f.prev)}
	f.prev = cum
	f.idx++
	return w
}

func TestSLOPercentileObjective(t *testing.T) {
	e := NewSLOEngine(Objective{
		Name: "lat-p99", Hist: "lat", Pct: 99, Max: 50, Windows: []int{1, 2},
	})
	f := newSLOFeeder([]float64{10, 100, 1000})
	e.Observe(f.window(5, 5, 5)) // window 0: p99 ≈ 6.6, well under
	e.Observe(f.window(500))     // window 1: lone obs in (100,1000] → estimate 100 → breach
	e.Observe(f.window(5))       // window 2: clean again

	r := e.Results()[0]
	if r.Samples != 3 {
		t.Fatalf("Samples = %d", r.Samples)
	}
	if r.BreachWindows != 1 || r.FirstBreach != 1 {
		t.Fatalf("breaches = %d first = %d, want 1 @ 1", r.BreachWindows, r.FirstBreach)
	}
	if len(r.Burns) != 2 || r.Burns[0].Len != 1 || r.Burns[1].Len != 2 {
		t.Fatalf("burns = %+v", r.Burns)
	}
	// The 1-window peak is window 1's lone 500: estimate 100 → burn 2.0.
	if math.Abs(r.Burns[0].Peak-2.0) > 1e-9 || r.Burns[0].PeakAt != 1 {
		t.Fatalf("burn1 = %+v, want peak 2.0 at window 1", r.Burns[0])
	}
	// The 2-window merge dilutes the spike: rank p99·(4−1) stays inside
	// the bottom bucket (≈9.9), so the long window burns cooler — the
	// short window is the one that catches a sharp one-off regression.
	if math.Abs(r.Burns[1].Peak-0.198) > 1e-3 {
		t.Fatalf("burn2 = %+v, want peak ≈ 0.198", r.Burns[1])
	}
	// Overall: 4 of 5 observations sit in the bottom bucket, so the
	// cumulative p99 stays under 10 and the objective is met despite
	// the mid-run breach — exactly what BreachWindows is for.
	if !r.Met {
		t.Fatalf("Met = false with overall %.4g", r.Overall)
	}
	if !strings.Contains(r.String(), "met") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestSLORatioObjective(t *testing.T) {
	e := NewSLOEngine(Objective{
		Name: "abort-rate", Bad: "bad", Total: "tot", Max: 0.1, Windows: []int{1, 4},
	})
	reg := NewRegistry()
	bad, tot := reg.Counter("bad"), reg.Counter("tot")
	prev := &Snapshot{}
	emit := func(i int) SampleWindow {
		cum := reg.Snapshot()
		w := SampleWindow{Index: i, Cum: cum, Delta: cum.Diff(prev)}
		prev = cum
		return w
	}
	tot.Add(10)
	e.Observe(emit(0)) // 0/10
	bad.Add(5)
	tot.Add(5)
	e.Observe(emit(1)) // window delta 5/5 = 1.0 → breach
	tot.Add(85)
	e.Observe(emit(2)) // window delta 0/85

	r := e.Results()[0]
	if r.BreachWindows != 1 || r.FirstBreach != 1 {
		t.Fatalf("breaches = %d first = %d", r.BreachWindows, r.FirstBreach)
	}
	// Overall = 5/100 = 0.05 ≤ 0.1: met despite the mid-run breach.
	if !r.Met || math.Abs(r.Overall-0.05) > 1e-9 {
		t.Fatalf("overall = %v met = %v", r.Overall, r.Met)
	}
	// burn1 peak: window 1 at 1.0/0.1 = 10×.
	if math.Abs(r.Burns[0].Peak-10) > 1e-9 || r.Burns[0].PeakAt != 1 {
		t.Fatalf("burn1 = %+v", r.Burns[0])
	}
	// burn4 is the trailing-4-window maximum over the run: hottest at
	// window 1, where the trail holds 5 bad / 15 total → (1/3)/0.1.
	if math.Abs(r.Burns[1].Peak-10.0/3.0) > 1e-9 || r.Burns[1].PeakAt != 1 {
		t.Fatalf("burn4 = %+v", r.Burns[1])
	}
}

func TestSLOEmptyWindowsNoBreach(t *testing.T) {
	e := NewSLOEngine(
		Objective{Name: "lat", Hist: "lat", Pct: 99, Max: 1},
		Objective{Name: "ratio", Bad: "bad", Total: "tot", Max: 0.5},
	)
	// Windows with no observations at all: 0/0 ratios and empty
	// histograms must not count as breaches.
	for i := 0; i < 5; i++ {
		e.Observe(SampleWindow{Index: i, Cum: &Snapshot{}, Delta: &Snapshot{}})
	}
	for _, r := range e.Results() {
		if r.BreachWindows != 0 || r.FirstBreach != -1 || !r.Met {
			t.Fatalf("%s: %+v", r.Name, r)
		}
		for _, b := range r.Burns {
			if b.Peak != 0 || b.PeakAt != -1 {
				t.Fatalf("%s burn = %+v, want untouched", r.Name, b)
			}
		}
	}
}

func TestSLONilEngineNoOps(t *testing.T) {
	var e *SLOEngine
	e.Observe(SampleWindow{})
	if e.Results() != nil {
		t.Fatal("nil engine Results should be nil")
	}
}

func TestHistPointPercentile(t *testing.T) {
	h := HistPoint{
		Bounds: []float64{10, 100, 1000},
		Counts: []uint64{2, 2, 0, 0}, // 2 in (0,10], 2 in (10,100]
		N:      4,
	}
	// p0 = rank 0 → first bucket's start (0).
	if v := h.Percentile(0); v != 0 {
		t.Fatalf("p0 = %v", v)
	}
	// p100 = rank 3, the last observation: halfway through the second
	// bucket's two occupants → pos (3-2)/2 = 0.5 → 10 + 0.5·90 = 55.
	if v := h.Percentile(100); math.Abs(v-55) > 1e-9 {
		t.Fatalf("p100 = %v, want 55", v)
	}
	// p50 = rank 1.5 in the first bucket: pos (1.5-0)/2 = 0.75 → 7.5.
	if v := h.Percentile(50); math.Abs(v-7.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 7.5", v)
	}
	// Empty histogram → 0.
	if v := (HistPoint{}).Percentile(99); v != 0 {
		t.Fatalf("empty p99 = %v", v)
	}
	// +Inf bucket clamps to the last finite bound.
	inf := HistPoint{Bounds: []float64{10}, Counts: []uint64{0, 3}, N: 3}
	if v := inf.Percentile(99); v != 10 {
		t.Fatalf("inf-bucket p99 = %v, want 10", v)
	}
}

func TestSnapshotHistogramPercentile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x", []float64{10, 100})
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	s := reg.Snapshot()
	if v, ok := s.HistogramPercentile("x", 99); !ok || v <= 0 || v > 10 {
		t.Fatalf("p99 = (%v, %v)", v, ok)
	}
	if _, ok := s.HistogramPercentile("absent", 99); ok {
		t.Fatal("absent histogram must report !ok")
	}
}

// TestSnapshotHistogramPercentileEdges pins the estimator's degenerate
// inputs: a registered-but-empty histogram, a single-bucket histogram,
// and the p0/p100 extremes.
func TestSnapshotHistogramPercentileEdges(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("empty", []float64{10, 100})
	single := reg.Histogram("single", []float64{10})
	for i := 0; i < 4; i++ {
		single.Observe(5)
	}
	spread := reg.Histogram("spread", []float64{10, 100, 1000})
	for i := 0; i < 5; i++ {
		spread.Observe(5)   // (0, 10]
		spread.Observe(50)  // (10, 100]
		spread.Observe(500) // (100, 1000]
	}
	overflow := reg.Histogram("overflow", []float64{10})
	overflow.Observe(99) // lands in the +Inf bucket
	s := reg.Snapshot()

	// Empty histogram: present (ok), estimate 0 — there is nothing to rank.
	if v, ok := s.HistogramPercentile("empty", 99); !ok || v != 0 {
		t.Errorf("empty hist p99 = (%v, %v), want (0, true)", v, ok)
	}

	// Single bucket: every percentile interpolates inside (0, 10].
	for _, p := range []float64{0, 50, 100} {
		if v, ok := s.HistogramPercentile("single", p); !ok || v < 0 || v > 10 {
			t.Errorf("single-bucket p%g = (%v, %v), want within [0, 10]", p, v, ok)
		}
	}

	// p0 is the minimum estimate, p100 the maximum; they bound every
	// interior percentile and never exceed the data's bucket range.
	p0, _ := s.HistogramPercentile("spread", 0)
	p50, _ := s.HistogramPercentile("spread", 50)
	p100, _ := s.HistogramPercentile("spread", 100)
	if !(p0 <= p50 && p50 <= p100) {
		t.Errorf("percentiles not monotone: p0=%v p50=%v p100=%v", p0, p50, p100)
	}
	if p0 < 0 || p0 > 10 {
		t.Errorf("p0 = %v, want in first bucket [0, 10]", p0)
	}
	if p100 < 100 || p100 > 1000 {
		t.Errorf("p100 = %v, want in last occupied bucket [100, 1000]", p100)
	}
	// Out-of-range p clamps rather than extrapolating.
	if v, _ := s.HistogramPercentile("spread", -5); v != p0 {
		t.Errorf("p(-5) = %v, want clamped to p0 %v", v, p0)
	}
	if v, _ := s.HistogramPercentile("spread", 250); v != p100 {
		t.Errorf("p(250) = %v, want clamped to p100 %v", v, p100)
	}

	// An observation past the last bound sits in the +Inf bucket; the
	// estimate clamps to the last finite bound instead of inventing one.
	if v, ok := s.HistogramPercentile("overflow", 100); !ok || v != 10 {
		t.Errorf("overflow p100 = (%v, %v), want (10, true)", v, ok)
	}
}
