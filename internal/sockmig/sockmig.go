// Package sockmig implements the paper's central contribution: socket
// migration for processes holding massive numbers of connections, in the
// three variants the evaluation compares (§III-C, Fig 5b/5c):
//
//   - Iterative: walk the FD table and migrate each socket one by one,
//     with a capture-setup synchronization and a separate transfer per
//     socket (the authors' first design, from their earlier IPSJ paper).
//   - Collective: three phases — (1) collect and ship the capture details
//     of all connections at once, (2) subtract state and buffer queues of
//     all connections into one unified buffer transferred in one go,
//     (3) run the regular BLCR FD-table iteration excluding sockets.
//   - Incremental collective: additionally track socket changes during
//     the precopy loops and transfer only per-section deltas, so the
//     freeze phase ships a small fraction of the bytes.
//
// The package provides the tracking and (de)serialization machinery; the
// migration engine (package migration) drives it over the wire.
package sockmig

import (
	"fmt"
	"hash/fnv"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
)

// Strategy selects the socket migration variant.
type Strategy int

// Strategies under evaluation.
const (
	Iterative Strategy = iota
	Collective
	IncrementalCollective
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case Iterative:
		return "iterative"
	case Collective:
		return "collective"
	case IncrementalCollective:
		return "incremental collective"
	}
	return "unknown"
}

// SectionUpdate is one changed section of one socket.
type SectionUpdate struct {
	ID   netstack.SectionID
	Data []byte
}

// SockUpdate carries the changed state of one socket, identified by its
// file descriptor (stable across the migration).
type SockUpdate struct {
	FD   int
	Kind byte // 'T' or 'U'
	// TCP: changed sections. UDP: UDPData holds the whole snapshot
	// (UDP socket state is small, §V-C2).
	Sections []SectionUpdate
	UDPData  []byte
}

// SockDelta is one round of socket updates for a process.
type SockDelta struct {
	Round int
	Socks []SockUpdate
}

// Empty reports whether the delta carries no socket data.
func (d *SockDelta) Empty() bool { return len(d.Socks) == 0 }

// EncodedSize returns the wire size without materializing the buffer.
func (d *SockDelta) EncodedSize() int {
	n := 8
	for _, su := range d.Socks {
		n += 4 + 1 + 4
		for _, sec := range su.Sections {
			n += 1 + 4 + len(sec.Data)
		}
		n += 4 + len(su.UDPData)
	}
	return n
}

// Encode serializes the delta.
func (d *SockDelta) Encode() []byte { return d.EncodeInto(nil) }

// EncodeInto serializes the delta into buf, reusing its capacity when it
// fits (content is overwritten). See ckpt.MemDelta.EncodeInto for the
// ownership contract.
func (d *SockDelta) EncodeInto(buf []byte) []byte {
	w := buf[:0]
	if need := d.EncodedSize(); cap(w) < need {
		w = make([]byte, 0, need)
	}
	put32 := func(v uint32) { w = append(w, byte(v>>24), byte(v>>16), byte(v>>8), byte(v)) }
	put32(uint32(d.Round))
	put32(uint32(len(d.Socks)))
	for _, su := range d.Socks {
		put32(uint32(su.FD))
		w = append(w, su.Kind)
		put32(uint32(len(su.Sections)))
		for _, sec := range su.Sections {
			w = append(w, byte(sec.ID))
			put32(uint32(len(sec.Data)))
			w = append(w, sec.Data...)
		}
		put32(uint32(len(su.UDPData)))
		w = append(w, su.UDPData...)
	}
	return w
}

// DecodeSockDelta parses an encoded delta.
func DecodeSockDelta(b []byte) (*SockDelta, error) {
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(b) {
			return 0, fmt.Errorf("sockmig: truncated delta at %d", off)
		}
		v := uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
		off += 4
		return v, nil
	}
	round, err := get32()
	if err != nil {
		return nil, err
	}
	count, err := get32()
	if err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("sockmig: absurd socket count %d", count)
	}
	d := &SockDelta{Round: int(round)}
	for i := uint32(0); i < count; i++ {
		var su SockUpdate
		fd, err := get32()
		if err != nil {
			return nil, err
		}
		su.FD = int(fd)
		if off >= len(b) {
			return nil, fmt.Errorf("sockmig: truncated kind")
		}
		su.Kind = b[off]
		off++
		nsec, err := get32()
		if err != nil {
			return nil, err
		}
		if nsec > 16 {
			return nil, fmt.Errorf("sockmig: absurd section count %d", nsec)
		}
		for j := uint32(0); j < nsec; j++ {
			if off >= len(b) {
				return nil, fmt.Errorf("sockmig: truncated section id")
			}
			id := netstack.SectionID(b[off])
			off++
			n, err := get32()
			if err != nil {
				return nil, err
			}
			if off+int(n) > len(b) {
				return nil, fmt.Errorf("sockmig: truncated section data")
			}
			su.Sections = append(su.Sections, SectionUpdate{ID: id,
				Data: append([]byte(nil), b[off:off+int(n)]...)})
			off += int(n)
		}
		n, err := get32()
		if err != nil {
			return nil, err
		}
		if off+int(n) > len(b) {
			return nil, fmt.Errorf("sockmig: truncated udp data")
		}
		if n > 0 {
			su.UDPData = append([]byte(nil), b[off:off+int(n)]...)
			off += int(n)
		}
		d.Socks = append(d.Socks, su)
	}
	return d, nil
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Tracker maintains per-socket per-section content hashes across precopy
// rounds — "we maintain tracking structures for connections and transfer
// only the changes in each subsequent loop" (§III-C).
type Tracker struct {
	prevTCP map[int][]uint64 // fd -> section hashes
	prevUDP map[int]uint64   // fd -> snapshot hash
	// SkippedLocked counts sockets left for a later round because they
	// were locked or mid fast-path receive (§V-C1).
	SkippedLocked uint64
	round         int
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{prevTCP: make(map[int][]uint64), prevUDP: make(map[int]uint64)}
}

// CaptureKeys returns the capture-filter keys for every socket of the
// process — the payload of the collective capture-setup phase. TCP
// established sockets produce exact flow keys; listening TCP sockets and
// UDP sockets produce local-port wildcards.
func CaptureKeys(p *proc.Process) []netsim.FlowKey {
	var keys []netsim.FlowKey
	tcp, udp := p.Sockets()
	for _, sk := range tcp {
		if sk.State == netstack.TCPListen {
			keys = append(keys, netsim.FlowKey{LocalPort: sk.LocalPort, Proto: netsim.ProtoTCP})
		} else {
			keys = append(keys, netsim.FlowKey{RemoteIP: sk.RemoteIP, RemotePort: sk.RemotePort,
				LocalPort: sk.LocalPort, Proto: netsim.ProtoTCP})
		}
	}
	for _, us := range udp {
		keys = append(keys, netsim.FlowKey{LocalPort: us.LocalPort, Proto: netsim.ProtoUDP})
	}
	return keys
}

// Delta computes one round of socket updates. In precopy rounds
// (freeze=false) sockets that are locked or fast-path receiving are
// skipped — their checkpoint is left "either for the subsequent loop or
// the final process freeze phase". In the freeze round the signal-based
// notification guarantees quiescence, so every socket is inspected, and
// changed sections are emitted; unchanged sockets are omitted entirely.
func (t *Tracker) Delta(p *proc.Process, freeze bool) *SockDelta {
	t.round++
	d := &SockDelta{Round: t.round}
	tcpFDs, udpFDs := socketsByFD(p)
	for _, fd := range sortedKeysT(tcpFDs) {
		sk := tcpFDs[fd]
		if !freeze && (sk.Locked() || sk.PrequeueBusy()) {
			t.SkippedLocked++
			continue
		}
		snap := netstack.SnapshotTCP(sk)
		prev := t.prevTCP[fd]
		if prev == nil {
			prev = make([]uint64, 5)
			t.prevTCP[fd] = prev
		}
		var su SockUpdate
		su.FD = fd
		su.Kind = 'T'
		for id := netstack.SectionID(0); id < 5; id++ {
			h := hashBytes(snap.SectionHashBytes(id))
			if h != prev[id] {
				prev[id] = h
				su.Sections = append(su.Sections, SectionUpdate{ID: id, Data: snap.EncodeSection(id)})
			}
		}
		if len(su.Sections) > 0 {
			d.Socks = append(d.Socks, su)
		}
	}
	for _, fd := range sortedKeysU(udpFDs) {
		snap := netstack.SnapshotUDP(udpFDs[fd])
		h := hashBytes(snap.HashBytes())
		if h != t.prevUDP[fd] {
			t.prevUDP[fd] = h
			d.Socks = append(d.Socks, SockUpdate{FD: fd, Kind: 'U', UDPData: snap.Encode()})
		}
	}
	return d
}

// FullDelta snapshots every socket completely, ignoring history — what
// the iterative and plain collective strategies ship in the freeze phase.
func FullDelta(p *proc.Process) *SockDelta {
	d := &SockDelta{Round: 0}
	tcpFDs, udpFDs := socketsByFD(p)
	for _, fd := range sortedKeysT(tcpFDs) {
		snap := netstack.SnapshotTCP(tcpFDs[fd])
		su := SockUpdate{FD: fd, Kind: 'T'}
		for id := netstack.SectionID(0); id < 5; id++ {
			su.Sections = append(su.Sections, SectionUpdate{ID: id, Data: snap.EncodeSection(id)})
		}
		d.Socks = append(d.Socks, su)
	}
	for _, fd := range sortedKeysU(udpFDs) {
		d.Socks = append(d.Socks, SockUpdate{FD: fd, Kind: 'U',
			UDPData: netstack.SnapshotUDP(udpFDs[fd]).Encode()})
	}
	return d
}

// SocketsInFDOrder returns the process's sockets in FD-table order, the
// iteration order of the iterative strategy.
func SocketsInFDOrder(p *proc.Process) ([]*netstack.TCPSocket, []*netstack.UDPSocket) {
	return p.Sockets()
}

// FDOf returns the descriptor holding sk, or -1.
func FDOf(p *proc.Process, sk *netstack.TCPSocket) int {
	for _, fd := range p.FDs.FDs() {
		if f, ok := p.FDs.Get(fd).(*proc.TCPFile); ok && f.Sock == sk {
			return fd
		}
	}
	return -1
}

// FDOfUDP returns the descriptor holding us, or -1.
func FDOfUDP(p *proc.Process, us *netstack.UDPSocket) int {
	for _, fd := range p.FDs.FDs() {
		if f, ok := p.FDs.Get(fd).(*proc.UDPFile); ok && f.Sock == us {
			return fd
		}
	}
	return -1
}

// SingleTCP builds a full-state delta for one TCP socket (the iterative
// strategy's per-connection transfer unit).
func SingleTCP(fd int, sk *netstack.TCPSocket) *SockDelta {
	snap := netstack.SnapshotTCP(sk)
	su := SockUpdate{FD: fd, Kind: 'T'}
	for id := netstack.SectionID(0); id < 5; id++ {
		su.Sections = append(su.Sections, SectionUpdate{ID: id, Data: snap.EncodeSection(id)})
	}
	return &SockDelta{Socks: []SockUpdate{su}}
}

// SingleUDP builds a full-state delta for one UDP socket.
func SingleUDP(fd int, us *netstack.UDPSocket) *SockDelta {
	return &SockDelta{Socks: []SockUpdate{{FD: fd, Kind: 'U',
		UDPData: netstack.SnapshotUDP(us).Encode()}}}
}

func socketsByFD(p *proc.Process) (map[int]*netstack.TCPSocket, map[int]*netstack.UDPSocket) {
	tcp := make(map[int]*netstack.TCPSocket)
	udp := make(map[int]*netstack.UDPSocket)
	for _, fd := range p.FDs.FDs() {
		switch f := p.FDs.Get(fd).(type) {
		case *proc.TCPFile:
			tcp[fd] = f.Sock
		case *proc.UDPFile:
			udp[fd] = f.Sock
		}
	}
	return tcp, udp
}

func sortedKeysT(m map[int]*netstack.TCPSocket) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortedKeysU(m map[int]*netstack.UDPSocket) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Store accumulates socket updates on the destination node across precopy
// rounds; at freeze time it materializes the sockets.
type Store struct {
	tcp map[int]*netstack.TCPSnapshot
	udp map[int]*netstack.UDPSnapshot
	// BytesApplied counts payload bytes folded in, per kind.
	BytesApplied uint64
}

// NewStore creates an empty accumulator.
func NewStore() *Store {
	return &Store{tcp: make(map[int]*netstack.TCPSnapshot), udp: make(map[int]*netstack.UDPSnapshot)}
}

// Apply folds one delta into the store.
func (s *Store) Apply(d *SockDelta) error {
	for _, su := range d.Socks {
		switch su.Kind {
		case 'T':
			snap := s.tcp[su.FD]
			if snap == nil {
				snap = &netstack.TCPSnapshot{}
				s.tcp[su.FD] = snap
			}
			for _, sec := range su.Sections {
				if err := snap.ApplySection(sec.ID, sec.Data); err != nil {
					return fmt.Errorf("sockmig: fd %d section %v: %w", su.FD, sec.ID, err)
				}
				s.BytesApplied += uint64(len(sec.Data))
			}
		case 'U':
			snap, err := netstack.DecodeUDPSnapshot(su.UDPData)
			if err != nil {
				return fmt.Errorf("sockmig: fd %d udp: %w", su.FD, err)
			}
			s.udp[su.FD] = snap
			s.BytesApplied += uint64(len(su.UDPData))
		default:
			return fmt.Errorf("sockmig: unknown socket kind %q", su.Kind)
		}
	}
	return nil
}

// TCPCount and UDPCount report accumulated sockets.
func (s *Store) TCPCount() int { return len(s.tcp) }

// UDPCount reports accumulated UDP sockets.
func (s *Store) UDPCount() int { return len(s.udp) }

// RestoreOptions control socket materialization.
type RestoreOptions struct {
	// LocalNet/LocalNetBits identify in-cluster remote addresses: TCP
	// connections whose remote falls inside get their local IP rewritten
	// to NewLocalIP (the migrated socket's address changes, §III-C).
	LocalNet     netsim.Addr
	LocalNetBits int
	NewLocalIP   netsim.Addr
	OldLocalIP   netsim.Addr
}

// InCluster reports whether addr is on the in-cluster network.
func (o RestoreOptions) InCluster(addr netsim.Addr) bool {
	if o.LocalNetBits == 0 {
		return false
	}
	mask := netsim.Addr(^uint32(0) << (32 - o.LocalNetBits))
	return addr&mask == o.LocalNet&mask
}

// RestoreAll materializes every accumulated socket on the destination
// stack and installs them into the process's FD table at their original
// descriptors. It returns the restored TCP sockets by fd for reinjection
// bookkeeping.
func (s *Store) RestoreAll(st *netstack.Stack, p *proc.Process, opt RestoreOptions) (map[int]*netstack.TCPSocket, map[int]*netstack.UDPSocket, error) {
	tcpOut := make(map[int]*netstack.TCPSocket, len(s.tcp))
	udpOut := make(map[int]*netstack.UDPSocket, len(s.udp))
	for _, fd := range sortedSnapKeysT(s.tcp) {
		snap := s.tcp[fd]
		if opt.InCluster(snap.RemoteIP) && opt.NewLocalIP != 0 && !snap.Listening {
			// The in-cluster socket's local address changes with the
			// migration; remember the original identity so later
			// migrations key their translation rules on it (§III-C).
			if snap.OrigLocalIP == 0 {
				snap.OrigLocalIP = snap.LocalIP
			}
			snap.LocalIP = opt.NewLocalIP
		}
		sk, err := netstack.RestoreTCP(st, snap)
		if err != nil {
			return nil, nil, fmt.Errorf("sockmig: restore tcp fd %d: %w", fd, err)
		}
		if err := p.FDs.InstallAt(fd, &proc.TCPFile{Sock: sk}); err != nil {
			return nil, nil, err
		}
		tcpOut[fd] = sk
	}
	for _, fd := range sortedSnapKeysU(s.udp) {
		us, err := netstack.RestoreUDP(st, s.udp[fd])
		if err != nil {
			return nil, nil, fmt.Errorf("sockmig: restore udp fd %d: %w", fd, err)
		}
		if err := p.FDs.InstallAt(fd, &proc.UDPFile{Sock: us}); err != nil {
			return nil, nil, err
		}
		udpOut[fd] = us
	}
	return tcpOut, udpOut, nil
}

func sortedSnapKeysT(m map[int]*netstack.TCPSnapshot) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortedSnapKeysU(m map[int]*netstack.UDPSnapshot) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

// DisableAll unhashes every socket of the process: the point of no
// return on the source node. Returns counts for metrics.
func DisableAll(p *proc.Process) (ntcp, nudp int) {
	tcp, udp := p.Sockets()
	for _, sk := range tcp {
		sk.Unhash()
		ntcp++
	}
	for _, us := range udp {
		us.Unhash()
		nudp++
	}
	return ntcp, nudp
}
