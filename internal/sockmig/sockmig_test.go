package sockmig

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

func TestStrategyString(t *testing.T) {
	if Iterative.String() != "iterative" || Collective.String() != "collective" ||
		IncrementalCollective.String() != "incremental collective" {
		t.Fatal("names wrong")
	}
	if Strategy(9).String() != "unknown" {
		t.Fatal("unknown strategy")
	}
}

func TestSockDeltaEncodeDecodeRoundTrip(t *testing.T) {
	f := func(fd uint16, secData, udpData []byte) bool {
		if len(secData) == 0 {
			secData = []byte{1}
		}
		d := &SockDelta{Round: 3, Socks: []SockUpdate{
			{FD: int(fd), Kind: 'T', Sections: []SectionUpdate{
				{ID: netstack.SecCore, Data: secData},
				{ID: netstack.SecWriteQueue, Data: []byte{}},
			}},
		}}
		if len(udpData) > 0 {
			d.Socks = append(d.Socks, SockUpdate{FD: int(fd) + 1, Kind: 'U', UDPData: udpData})
		}
		got, err := DecodeSockDelta(d.Encode())
		if err != nil {
			return false
		}
		// Normalize empty slices.
		for i := range d.Socks {
			for j := range d.Socks[i].Sections {
				if len(d.Socks[i].Sections[j].Data) == 0 {
					d.Socks[i].Sections[j].Data = nil
				}
			}
		}
		for i := range got.Socks {
			for j := range got.Socks[i].Sections {
				if len(got.Socks[i].Sections[j].Data) == 0 {
					got.Socks[i].Sections[j].Data = nil
				}
			}
		}
		return reflect.DeepEqual(d, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSockDeltaEncodedSizeMatches(t *testing.T) {
	d := &SockDelta{Round: 1, Socks: []SockUpdate{
		{FD: 3, Kind: 'T', Sections: []SectionUpdate{{ID: 1, Data: make([]byte, 100)}}},
		{FD: 4, Kind: 'U', UDPData: make([]byte, 37)},
	}}
	if got := len(d.Encode()); got != d.EncodedSize() {
		t.Fatalf("EncodedSize = %d, actual %d", d.EncodedSize(), got)
	}
}

func TestDecodeCorruptDelta(t *testing.T) {
	d := &SockDelta{Round: 1, Socks: []SockUpdate{{FD: 3, Kind: 'T',
		Sections: []SectionUpdate{{ID: 1, Data: make([]byte, 50)}}}}}
	enc := d.Encode()
	for _, cut := range []int{2, 9, len(enc) - 1} {
		if _, err := DecodeSockDelta(enc[:cut]); err == nil {
			t.Fatalf("truncated delta (%d) accepted", cut)
		}
	}
}

// testEnv builds a cluster with a process on node1 holding nTCP client
// connections (from external hosts) and one in-cluster MySQL-style
// connection to node2.
type testEnv struct {
	c       *proc.Cluster
	p       *proc.Process
	clients []*netstack.TCPSocket
	dbPeer  *netstack.TCPSocket
}

func newEnv(t *testing.T, nTCP int) *testEnv {
	t.Helper()
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	n1, n2 := c.Nodes[0], c.Nodes[1]
	p := n1.Spawn("zone", 1)
	lst := netstack.NewTCPSocket(n1.Stack)
	if err := lst.Listen(c.ClusterIP, 7000); err != nil {
		t.Fatal(err)
	}
	var accepted []*netstack.TCPSocket
	lst.OnAccept = func(ch *netstack.TCPSocket) { accepted = append(accepted, ch) }
	env := &testEnv{c: c, p: p}
	ext := c.NewExternalHost("clients")
	for i := 0; i < nTCP; i++ {
		cli := netstack.NewTCPSocket(ext)
		if err := cli.Connect(c.ClusterIP, 7000); err != nil {
			t.Fatal(err)
		}
		env.clients = append(env.clients, cli)
	}
	// DB session to node2.
	dbl := netstack.NewTCPSocket(n2.Stack)
	if err := dbl.Listen(n2.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	dbl.OnAccept = func(ch *netstack.TCPSocket) { env.dbPeer = ch }
	db := netstack.NewTCPSocket(n1.Stack)
	if err := db.Connect(n2.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	c.Sched.RunFor(time.Second)
	if len(accepted) != nTCP || env.dbPeer == nil {
		t.Fatalf("setup: accepted=%d db=%v", len(accepted), env.dbPeer)
	}
	for _, sk := range accepted {
		p.FDs.Install(&proc.TCPFile{Sock: sk})
	}
	p.FDs.Install(&proc.TCPFile{Sock: db})
	return env
}

func TestCaptureKeys(t *testing.T) {
	env := newEnv(t, 3)
	us := netstack.NewUDPSocket(env.c.Nodes[0].Stack)
	if err := us.Bind(env.c.ClusterIP, 27960); err != nil {
		t.Fatal(err)
	}
	env.p.FDs.Install(&proc.UDPFile{Sock: us})
	lst := netstack.NewTCPSocket(env.c.Nodes[0].Stack)
	if err := lst.Listen(env.c.ClusterIP, 7100); err != nil {
		t.Fatal(err)
	}
	env.p.FDs.Install(&proc.TCPFile{Sock: lst})
	keys := CaptureKeys(env.p)
	if len(keys) != 6 { // 3 clients + 1 db + 1 listener + 1 udp
		t.Fatalf("keys = %d", len(keys))
	}
	exact, wildcardTCP, wildcardUDP := 0, 0, 0
	for _, k := range keys {
		switch {
		case k.Proto == netsim.ProtoTCP && k.RemoteIP != 0:
			exact++
		case k.Proto == netsim.ProtoTCP:
			wildcardTCP++
		case k.Proto == netsim.ProtoUDP:
			wildcardUDP++
		}
	}
	if exact != 4 || wildcardTCP != 1 || wildcardUDP != 1 {
		t.Fatalf("key mix: exact=%d wtcp=%d wudp=%d", exact, wildcardTCP, wildcardUDP)
	}
}

func TestTrackerFirstRoundShipsEverything(t *testing.T) {
	env := newEnv(t, 4)
	tr := NewTracker()
	d := tr.Delta(env.p, false)
	if len(d.Socks) != 5 {
		t.Fatalf("first round socks = %d, want 5", len(d.Socks))
	}
	for _, su := range d.Socks {
		if len(su.Sections) != 5 {
			t.Fatalf("first round fd %d sections = %d, want all 5", su.FD, len(su.Sections))
		}
	}
}

func TestTrackerQuiescentDeltaEmpty(t *testing.T) {
	env := newEnv(t, 4)
	tr := NewTracker()
	tr.Delta(env.p, false)
	d := tr.Delta(env.p, false)
	if !d.Empty() {
		t.Fatalf("quiescent delta has %d socks", len(d.Socks))
	}
}

func TestTrackerDetectsTrafficOnOneSocket(t *testing.T) {
	env := newEnv(t, 4)
	tr := NewTracker()
	tr.Delta(env.p, false)
	// Traffic on exactly one client connection.
	env.clients[2].Send([]byte("move north"))
	env.c.Sched.RunFor(100 * time.Millisecond)
	d := tr.Delta(env.p, false)
	if len(d.Socks) != 1 {
		t.Fatalf("delta socks = %d, want 1", len(d.Socks))
	}
	// Changed sections: core (rcv_nxt, timestamps) and receive queue.
	ids := map[netstack.SectionID]bool{}
	for _, sec := range d.Socks[0].Sections {
		ids[sec.ID] = true
	}
	if !ids[netstack.SecCore] || !ids[netstack.SecReceiveQueue] {
		t.Fatalf("changed sections = %v", ids)
	}
	if ids[netstack.SecIdentity] {
		t.Fatal("identity section should never change")
	}
}

func TestTrackerSkipsLockedSockets(t *testing.T) {
	env := newEnv(t, 2)
	tr := NewTracker()
	tcp, _ := env.p.Sockets()
	tcp[0].Lock()
	d := tr.Delta(env.p, false)
	if len(d.Socks) != 2 { // 1 unlocked client + db; locked one skipped
		t.Fatalf("socks = %d, want 2", len(d.Socks))
	}
	if tr.SkippedLocked != 1 {
		t.Fatalf("SkippedLocked = %d", tr.SkippedLocked)
	}
	// Freeze round inspects everything (signal released the lock first in
	// the real flow; here we unlock manually).
	tcp[0].Unlock()
	d2 := tr.Delta(env.p, true)
	if len(d2.Socks) != 1 {
		t.Fatalf("freeze delta socks = %d, want the previously skipped one", len(d2.Socks))
	}
}

func TestIncrementalBeatsFullOnIdleConnections(t *testing.T) {
	env := newEnv(t, 64)
	tr := NewTracker()
	tr.Delta(env.p, false) // precopy round ships the bulk
	// Light traffic on two connections.
	env.clients[0].Send([]byte("a"))
	env.clients[1].Send([]byte("b"))
	env.c.Sched.RunFor(50 * time.Millisecond)
	inc := tr.Delta(env.p, true)
	full := FullDelta(env.p)
	if inc.EncodedSize() >= full.EncodedSize()/10 {
		t.Fatalf("incremental freeze bytes %d not ≪ full %d", inc.EncodedSize(), full.EncodedSize())
	}
	if len(full.Socks) != 65 {
		t.Fatalf("full delta socks = %d", len(full.Socks))
	}
}

func TestStoreAccumulatesAndRestores(t *testing.T) {
	env := newEnv(t, 8)
	n1, n2 := env.c.Nodes[0], env.c.Nodes[1]
	// Generate state: client 3 sends data that stays unread in the queue.
	env.clients[3].Send([]byte("queued-data"))
	env.c.Sched.RunFor(100 * time.Millisecond)

	tr := NewTracker()
	d1 := tr.Delta(env.p, false)
	store := NewStore()
	dec1, err := DecodeSockDelta(d1.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Apply(dec1); err != nil {
		t.Fatal(err)
	}
	// More traffic, then freeze.
	env.clients[5].Send([]byte("late"))
	env.c.Sched.RunFor(50 * time.Millisecond)
	DisableAll(env.p)
	dec2, err := DecodeSockDelta(tr.Delta(env.p, true).Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Apply(dec2); err != nil {
		t.Fatal(err)
	}
	if store.TCPCount() != 9 {
		t.Fatalf("store tcp = %d", store.TCPCount())
	}

	// Restore on node2 into a fresh process.
	q := n2.Spawn("zone", 1)
	opt := RestoreOptions{LocalNet: proc.LocalNet, LocalNetBits: 24,
		NewLocalIP: n2.LocalIP, OldLocalIP: n1.LocalIP}
	tcpOut, _, err := store.RestoreAll(n2.Stack, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tcpOut) != 9 {
		t.Fatalf("restored %d sockets", len(tcpOut))
	}
	// The queued data survived.
	foundQueued := false
	for _, sk := range tcpOut {
		if string(sk.Recv()) == "queued-data" {
			foundQueued = true
		}
	}
	if !foundQueued {
		t.Fatal("receive queue lost")
	}
	// The in-cluster connection's local IP was rewritten; client
	// connections kept the cluster IP.
	rewritten, kept := 0, 0
	for _, sk := range tcpOut {
		switch sk.LocalIP {
		case n2.LocalIP:
			rewritten++
		case env.c.ClusterIP:
			kept++
		}
	}
	if rewritten != 1 || kept != 8 {
		t.Fatalf("rewritten=%d kept=%d", rewritten, kept)
	}
}

func TestRestoreOptionsInCluster(t *testing.T) {
	opt := RestoreOptions{LocalNet: proc.LocalNet, LocalNetBits: 24}
	if !opt.InCluster(netsim.MakeAddr(192, 168, 1, 55)) {
		t.Fatal("in-cluster address not recognized")
	}
	if opt.InCluster(netsim.MakeAddr(198, 51, 100, 1)) {
		t.Fatal("external address claimed in-cluster")
	}
	if (RestoreOptions{}).InCluster(netsim.MakeAddr(192, 168, 1, 55)) {
		t.Fatal("zero options matched")
	}
}

func TestDisableAllCounts(t *testing.T) {
	env := newEnv(t, 3)
	us := netstack.NewUDPSocket(env.c.Nodes[0].Stack)
	if err := us.Bind(env.c.ClusterIP, 27960); err != nil {
		t.Fatal(err)
	}
	env.p.FDs.Install(&proc.UDPFile{Sock: us})
	ntcp, nudp := DisableAll(env.p)
	if ntcp != 4 || nudp != 1 {
		t.Fatalf("disable counts = %d,%d", ntcp, nudp)
	}
	tcp, udp := env.p.Sockets()
	for _, sk := range tcp {
		if !sk.Unhashed() {
			t.Fatal("tcp socket still hashed")
		}
	}
	for _, u := range udp {
		if !u.Unhashed() {
			t.Fatal("udp socket still hashed")
		}
	}
}

func TestStoreRejectsGarbage(t *testing.T) {
	store := NewStore()
	if err := store.Apply(&SockDelta{Socks: []SockUpdate{{FD: 1, Kind: 'X'}}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := store.Apply(&SockDelta{Socks: []SockUpdate{{FD: 1, Kind: 'U', UDPData: []byte{1}}}}); err == nil {
		t.Fatal("corrupt udp snapshot accepted")
	}
}

func TestFullDeltaSizeScalesLinearly(t *testing.T) {
	// The Fig 5c premise: full socket state is ~KernelSockImageBytes per
	// connection, so bytes grow linearly with connection count.
	sizes := map[int]int{}
	for _, n := range []int{8, 16, 32} {
		env := newEnv(t, n)
		sizes[n] = FullDelta(env.p).EncodedSize()
	}
	perConn8 := float64(sizes[8]) / 9
	perConn32 := float64(sizes[32]) / 33
	ratio := perConn32 / perConn8
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("per-connection cost not stable: %v vs %v", perConn8, perConn32)
	}
	if perConn8 < float64(netstack.KernelSockImageBytes) {
		t.Fatalf("per-connection bytes %v below kernel image size", perConn8)
	}
}
