package xlat

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// setupMigratedConn builds the paper's §III-C scenario: a process on IP1
// (node1) holds a TCP connection with a peer on IP3 (node3); the socket
// then migrates to IP2 (node2). Returns the restored socket on node2 and
// the peer socket on node3.
func setupMigratedConn(t *testing.T) (c *proc.Cluster, moved, peer *netstack.TCPSocket) {
	t.Helper()
	c = proc.NewCluster(simtime.NewScheduler(), 3)
	n1, n2, n3 := c.Nodes[0], c.Nodes[1], c.Nodes[2]
	lst := netstack.NewTCPSocket(n3.Stack)
	if err := lst.Listen(n3.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	lst.OnAccept = func(ch *netstack.TCPSocket) { peer = ch }
	sk := netstack.NewTCPSocket(n1.Stack)
	if err := sk.Connect(n3.LocalIP, 3306); err != nil {
		t.Fatal(err)
	}
	c.Sched.RunFor(time.Second)
	if peer == nil {
		t.Fatal("setup: no connection")
	}
	// Install the translation filter on the peer's host, then migrate.
	xl := NewTranslator(n3.Stack)
	rule := Rule{Proto: netsim.ProtoTCP, OldAddr: n1.LocalIP, NewAddr: n2.LocalIP,
		LocalPort: peer.LocalPort, RemotePort: peer.RemotePort}
	if err := xl.Install(rule); err != nil {
		t.Fatal(err)
	}
	sk.Unhash()
	snap := netstack.SnapshotTCP(sk)
	// The local IP of an in-cluster socket changes with the migration
	// (§III-C); the migration engine rewrites it before restoring, and
	// the translation filter on the peer hides the change.
	snap.LocalIP = n2.LocalIP
	moved, err := netstack.RestoreTCP(n2.Stack, snap)
	if err != nil {
		t.Fatal(err)
	}
	return c, moved, peer
}

func TestInClusterMigrationTransparent(t *testing.T) {
	c, moved, peer := setupMigratedConn(t)
	var atPeer, atMoved []byte
	peer.OnReadable = func() { atPeer = append(atPeer, peer.Recv()...) }
	moved.OnReadable = func() { atMoved = append(atMoved, moved.Recv()...) }

	// Migrated socket talks to the peer: its packets claim SrcIP=IP1
	// (it kept its identity), the peer answers to IP1, the filter
	// rewrites to IP2. Both directions must flow.
	moved.Send([]byte("UPDATE world SET x=1"))
	c.Sched.RunFor(time.Second)
	if string(atPeer) != "UPDATE world SET x=1" {
		t.Fatalf("peer received %q", atPeer)
	}
	peer.Send([]byte("OK"))
	c.Sched.RunFor(time.Second)
	if string(atMoved) != "OK" {
		t.Fatalf("moved socket received %q", atMoved)
	}
	// The peer never noticed: its socket still names IP1 as remote.
	if peer.RemoteIP != c.Nodes[0].LocalIP {
		t.Fatal("peer's view of the connection changed")
	}
	// And checksums stayed valid end to end (verified implicitly by
	// delivery; verify the filter fixed them on a sample packet).
}

func TestTranslationChecksumAndDstEntry(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 3)
	n1, n2, n3 := c.Nodes[0], c.Nodes[1], c.Nodes[2]
	xl := NewTranslator(n3.Stack)
	rule := Rule{Proto: netsim.ProtoTCP, OldAddr: n1.LocalIP, NewAddr: n2.LocalIP,
		LocalPort: 3306, RemotePort: 40000}
	if err := xl.Install(rule); err != nil {
		t.Fatal(err)
	}
	// Outgoing packet from the peer socket, carrying the *old* dst entry.
	oldDst, _ := n3.Stack.DstFor(n1.LocalIP)
	p := &netsim.Packet{Proto: netsim.ProtoTCP, SrcIP: n3.LocalIP, DstIP: n1.LocalIP,
		SrcPort: 3306, DstPort: 40000, Payload: []byte("q"), Dst: oldDst}
	p.FixChecksum()
	// Run the LOCAL_OUT chain by transmitting through the stack: observe
	// at node2 that the packet arrives with a valid checksum.
	var got *netsim.Packet
	n2.Stack.RegisterHook(netstack.HookPreRouting, 0, func(pk *netsim.Packet) netstack.Verdict {
		got = pk.Clone()
		return netstack.VerdictAccept
	})
	n3.Stack.RegisterHook(netstack.HookLocalOut, 10, func(pk *netsim.Packet) netstack.Verdict {
		// After the translator (prio 0) ran: dst entry must be replaced.
		if pk.Dst == oldDst {
			t.Error("destination cache entry not replaced")
		}
		return netstack.VerdictAccept
	})
	// Transmit via a raw path: use the translator's stack.
	sendRaw(n3.Stack, p)
	c.Sched.RunFor(time.Second)
	if got == nil {
		t.Fatal("packet did not reach the new node — dst entry still pointed at the old one")
	}
	if got.DstIP != n2.LocalIP {
		t.Fatalf("dst not rewritten: %s", got.DstIP)
	}
	if !got.ChecksumOK() {
		t.Fatal("checksum not fixed after rewrite")
	}
	out, _, ok := xl.Stats(rule)
	if !ok || out != 1 {
		t.Fatalf("stats out = %d", out)
	}
}

// sendRaw pushes a packet through the stack's output path; declared here
// via a tiny UDP socket trampoline to avoid exporting internals.
func sendRaw(st *netstack.Stack, p *netsim.Packet) {
	st.TransmitRaw(p)
}

func TestIncomingRewrite(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 3)
	n1, n2, n3 := c.Nodes[0], c.Nodes[1], c.Nodes[2]
	xl := NewTranslator(n3.Stack)
	rule := Rule{Proto: netsim.ProtoTCP, OldAddr: n1.LocalIP, NewAddr: n2.LocalIP,
		LocalPort: 3306, RemotePort: 40000}
	if err := xl.Install(rule); err != nil {
		t.Fatal(err)
	}
	var seen *netsim.Packet
	n3.Stack.RegisterHook(netstack.HookLocalIn, 10, func(pk *netsim.Packet) netstack.Verdict {
		seen = pk.Clone()
		return netstack.VerdictAccept
	})
	// Packet from the migrated socket on n2 arrives at n3.
	p := &netsim.Packet{Proto: netsim.ProtoTCP, SrcIP: n2.LocalIP, DstIP: n3.LocalIP,
		SrcPort: 40000, DstPort: 3306, Payload: []byte("r")}
	p.FixChecksum()
	n2.Stack.TransmitRaw(p)
	c.Sched.RunFor(time.Second)
	if seen == nil {
		t.Fatal("packet not delivered")
	}
	if seen.SrcIP != n1.LocalIP {
		t.Fatalf("source not rewritten back: %s", seen.SrcIP)
	}
	if !seen.ChecksumOK() {
		t.Fatal("checksum not fixed on ingress rewrite")
	}
	_, in, _ := xl.Stats(rule)
	if in != 1 {
		t.Fatalf("stats in = %d", in)
	}
}

func TestRuleRemovalRestoresPassthrough(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 3)
	n1, n2, n3 := c.Nodes[0], c.Nodes[1], c.Nodes[2]
	xl := NewTranslator(n3.Stack)
	rule := Rule{Proto: netsim.ProtoTCP, OldAddr: n1.LocalIP, NewAddr: n2.LocalIP,
		LocalPort: 3306, RemotePort: 40000}
	if err := xl.Install(rule); err != nil {
		t.Fatal(err)
	}
	if err := xl.Install(rule); err != nil { // idempotent
		t.Fatal(err)
	}
	if len(xl.Rules()) != 1 {
		t.Fatal("idempotent install duplicated rule")
	}
	xl.Remove(rule)
	if len(xl.Rules()) != 0 {
		t.Fatal("rule not removed")
	}
	if _, _, ok := xl.Stats(rule); ok {
		t.Fatal("stats for removed rule")
	}
}

func TestInstallNoRoute(t *testing.T) {
	st := netstack.NewStack(simtime.NewScheduler(), "lonely", 0)
	xl := NewTranslator(st)
	err := xl.Install(Rule{Proto: netsim.ProtoTCP, OldAddr: 1, NewAddr: 2})
	if err == nil {
		t.Fatal("install without route accepted")
	}
}

func TestTransdProtocol(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 3)
	n1, n2, n3 := c.Nodes[0], c.Nodes[1], c.Nodes[2]
	d, err := StartTransd(n3.Stack, n3.LocalIP)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(n1.Stack, n1.LocalIP)
	rule := Rule{Proto: netsim.ProtoTCP, OldAddr: n1.LocalIP, NewAddr: n2.LocalIP,
		LocalPort: 3306, RemotePort: 40000}
	var result error = errors.New("pending")
	cl.Request(n3.LocalIP, true, rule, func(e error) { result = e })
	c.Sched.RunFor(time.Second)
	if result != nil {
		t.Fatalf("add request failed: %v", result)
	}
	if len(d.Translator().Rules()) != 1 {
		t.Fatal("rule not installed by daemon")
	}
	if cl.Outstanding() != 0 {
		t.Fatal("request left pending")
	}
	// Remove.
	result = errors.New("pending")
	cl.Request(n3.LocalIP, false, rule, func(e error) { result = e })
	c.Sched.RunFor(time.Second)
	if result != nil || len(d.Translator().Rules()) != 0 {
		t.Fatal("remove failed")
	}
}

func TestTransdTimeout(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	n1 := c.Nodes[0]
	cl := NewClient(n1.Stack, n1.LocalIP)
	var result error
	done := false
	// No transd running on node2.
	cl.Request(c.Nodes[1].LocalIP, true, Rule{Proto: netsim.ProtoTCP,
		OldAddr: n1.LocalIP, NewAddr: n1.LocalIP}, func(e error) { result = e; done = true })
	c.Sched.RunFor(5 * time.Second)
	if !done || result == nil {
		t.Fatal("request to dead daemon did not time out")
	}
}

func TestTransdNakOnBadRule(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 2)
	n1, n2 := c.Nodes[0], c.Nodes[1]
	if _, err := StartTransd(n2.Stack, n2.LocalIP); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(n1.Stack, n1.LocalIP)
	var result error
	// NewAddr unroutable from n2 (an external address is routable via
	// default route, so use 0 which routes fine... use a LAN address
	// outside the /24? 10.9.9.9 hits the default route too). The daemon
	// naks only when MakeDst fails; on the cluster every address routes,
	// so instead send a malformed request directly.
	us := netstack.NewUDPSocket(n1.Stack)
	us.BindEphemeral(n1.LocalIP)
	gotNak := false
	us.OnReadable = func() {
		d, _ := us.Recv()
		if len(d.Payload) > 0 && d.Payload[0] == opNak {
			gotNak = true
		}
	}
	us.SendTo(n2.LocalIP, TransdPort, []byte{9, 9})
	c.Sched.RunFor(time.Second)
	if !gotNak {
		t.Fatal("malformed request not nak'd")
	}
	_ = cl
	_ = result
}

func TestRequestEncodingRoundTrip(t *testing.T) {
	r := Rule{Proto: netsim.ProtoUDP, OldAddr: 0xAABBCCDD, NewAddr: 0x11223344,
		LocalPort: 1234, RemotePort: 4321}
	op, id, got, err := decodeRequest(encodeRequest(opAdd, 77, r))
	if err != nil || op != opAdd || id != 77 || got != r {
		t.Fatalf("roundtrip: %v %v %v %v", op, id, got, err)
	}
	if !bytes.Equal(encodeRequest(opRemove, 1, r), encodeRequest(opRemove, 1, r)) {
		t.Fatal("encoding not deterministic")
	}
}

func TestStaleEpochInstallRejected(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 3)
	n1, n2, n3 := c.Nodes[0], c.Nodes[1], c.Nodes[2]
	xl := NewTranslator(n3.Stack)
	base := Rule{Proto: netsim.ProtoTCP, OldAddr: n1.LocalIP, NewAddr: n2.LocalIP,
		LocalPort: 3306, RemotePort: 40000}

	fresh := base
	fresh.Epoch = 3
	if err := xl.Install(fresh); err != nil {
		t.Fatal(err)
	}
	// A superseded owner re-pointing the flow at itself must be refused.
	stale := base
	stale.Epoch = 2
	stale.NewAddr = n1.LocalIP + 1 // some other target
	if err := xl.Install(stale); err == nil {
		t.Fatal("stale-epoch install accepted")
	}
	if xl.Stale != 1 {
		t.Fatalf("Stale = %d, want 1", xl.Stale)
	}
	if got := xl.Rules()[0]; got != fresh {
		t.Fatalf("installed rule changed: %v", got)
	}
	// A higher epoch retargets (supersede = GC of the old rule).
	newer := base
	newer.Epoch = 4
	newer.NewAddr = n3.LocalIP
	if err := xl.Install(newer); err != nil {
		t.Fatal(err)
	}
	if len(xl.Rules()) != 1 || xl.Rules()[0] != newer {
		t.Fatalf("retarget failed: %v", xl.Rules())
	}
	// A stale remover (exact-match removal carries its own old epoch)
	// cannot dismantle the fresh rule.
	xl.Remove(fresh)
	if len(xl.Rules()) != 1 {
		t.Fatal("stale remove dismantled a fresh rule")
	}
	// Stale identity install (migration "back home" claimed by an old
	// epoch) must not drop the fresh rule either.
	staleHome := base
	staleHome.Epoch = 1
	staleHome.NewAddr = staleHome.OldAddr
	if err := xl.Install(staleHome); err == nil {
		t.Fatal("stale identity install accepted")
	}
	if len(xl.Rules()) != 1 {
		t.Fatal("stale identity install dropped the fresh rule")
	}
}

func TestFenceRemotePortGCsRules(t *testing.T) {
	c := proc.NewCluster(simtime.NewScheduler(), 3)
	n1, n2, n3 := c.Nodes[0], c.Nodes[1], c.Nodes[2]
	xl := NewTranslator(n3.Stack)
	mk := func(remotePort uint16, ep uint64) Rule {
		return Rule{Proto: netsim.ProtoTCP, OldAddr: n1.LocalIP, NewAddr: n2.LocalIP,
			LocalPort: 3306, RemotePort: remotePort, Epoch: ep}
	}
	if err := xl.Install(mk(40000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := xl.Install(mk(40001, 2)); err != nil {
		t.Fatal(err)
	}
	if dropped := xl.FenceRemotePort(40000, 2); dropped != 1 {
		t.Fatalf("fence dropped %d, want 1", dropped)
	}
	if len(xl.Rules()) != 1 || xl.Rules()[0].RemotePort != 40001 {
		t.Fatalf("wrong rule GC'd: %v", xl.Rules())
	}
	if xl.PortFence(40000) != 2 {
		t.Fatal("fence watermark not recorded")
	}
	// Installs below the fence are now refused even with no rule present.
	if err := xl.Install(mk(40000, 1)); err == nil {
		t.Fatal("post-fence stale install accepted")
	}
	// At the fence: accepted.
	if err := xl.Install(mk(40000, 2)); err != nil {
		t.Fatal(err)
	}
	// Fence ratchets forward only.
	if xl.FenceRemotePort(40000, 1) != 0 || xl.PortFence(40000) != 2 {
		t.Fatal("fence moved backward")
	}
}

func TestRequestEncodingEpochAndLegacy(t *testing.T) {
	r := Rule{Proto: netsim.ProtoTCP, OldAddr: 1, NewAddr: 2,
		LocalPort: 10, RemotePort: 20, Epoch: 0x1122334455667788}
	op, id, got, err := decodeRequest(encodeRequest(opAdd, 9, r))
	if err != nil || op != opAdd || id != 9 || got != r {
		t.Fatalf("epoch roundtrip: %v %v %v %v", op, id, got, err)
	}
	// An 18-byte pre-epoch frame decodes with the legacy epoch 0.
	legacy := encodeRequest(opAdd, 9, r)[:18]
	_, _, got, err = decodeRequest(legacy)
	if err != nil || got.Epoch != 0 || got.RemotePort != 20 {
		t.Fatalf("legacy decode: %v %v", got, err)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Proto: 6, OldAddr: netsim.MakeAddr(192, 168, 1, 1),
		NewAddr: netsim.MakeAddr(192, 168, 1, 2), LocalPort: 3306, RemotePort: 400}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}
