// Package xlat implements local address translation for in-cluster
// connection migration (§III-C, §V-D) and the transd daemon that installs
// translation filters on request.
//
// When process P migrates from IP1 to IP2 while holding a connection to a
// peer on IP3, the peer's host enables a translation filter: outgoing
// packets addressed to IP1 are rewritten to IP2 (including replacing the
// inherited IP destination cache entry and fixing the checksum), and
// incoming packets from IP2 have their source rewritten back to IP1 — so
// the peer socket never notices the move.
package xlat

import (
	"fmt"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
)

// Rule describes one translated connection from the peer host's point of
// view: the peer's socket talks to OldAddr; the connection now really
// lives at NewAddr.
type Rule struct {
	Proto      byte
	OldAddr    netsim.Addr // pre-migration address of the remote endpoint
	NewAddr    netsim.Addr // node the socket migrated to
	LocalPort  uint16      // the peer socket's local port
	RemotePort uint16      // the migrated socket's port

	// Epoch is the ownership epoch of the service the rule redirects to.
	// Installs stamped with an epoch below an already-installed rule for
	// the same flow (or below a port fence) are stale and rejected; a
	// higher epoch supersedes — the retarget is the GC of the old rule.
	// Zero is the legacy unfenced epoch.
	Epoch uint64
}

// String renders the rule for logs and examples.
func (r Rule) String() string {
	return fmt.Sprintf("xlat %d: %s:%d <-> local:%d now at %s",
		r.Proto, r.OldAddr, r.RemotePort, r.LocalPort, r.NewAddr)
}

type activeRule struct {
	Rule
	newDst *netsim.DstEntry
	// TranslatedOut / TranslatedIn count rewritten packets.
	TranslatedOut, TranslatedIn uint64
}

// Translator owns the translation rules of one node and the two netfilter
// hooks (NF_INET_LOCAL_OUT and NF_INET_LOCAL_IN) that apply them.
type Translator struct {
	stack   *netstack.Stack
	rules   []*activeRule
	inHook  netstack.HookID
	outHook netstack.HookID
	hooked  bool

	// fences maps a migrated service's port (Rule.RemotePort) to the
	// minimum acceptable rule epoch, raised by FenceRemotePort when the
	// node learns ownership of the service moved to a higher epoch.
	fences map[uint16]uint64

	// Stale counts installs rejected for carrying a superseded epoch.
	Stale uint64
}

// NewTranslator creates the translator for a node's stack.
func NewTranslator(st *netstack.Stack) *Translator {
	return &Translator{stack: st, fences: make(map[uint16]uint64)}
}

// Install activates a rule. It builds an accurate destination cache entry
// for the new address up front — rewriting only the IP header would still
// deliver to the old node, because the output path forwards by the dst
// entry inherited from the socket (§V-D).
func (t *Translator) Install(r Rule) error {
	if min, fenced := t.fences[r.RemotePort]; fenced && r.Epoch < min {
		t.Stale++
		return fmt.Errorf("xlat: install for port %d fenced (epoch %d < %d)",
			r.RemotePort, r.Epoch, min)
	}
	// A migration back to the connection's original home makes the rule
	// an identity mapping: drop any existing rule instead.
	if r.OldAddr == r.NewAddr {
		return t.removeMatch(r)
	}
	for i, ar := range t.rules {
		if ar.Rule == r {
			return nil // idempotent
		}
		if sameMatch(ar.Rule, r) {
			if r.Epoch < ar.Epoch {
				// A superseded owner is trying to redirect the flow to
				// itself; the installed rule belongs to a higher epoch.
				t.Stale++
				return fmt.Errorf("xlat: stale install for %v (epoch %d < %d)",
					r, r.Epoch, ar.Epoch)
			}
			// The connection migrated again: retarget the existing rule.
			// Replacing it is the GC of the superseded-epoch rule.
			dst, err := t.stack.MakeDst(r.NewAddr)
			if err != nil {
				return fmt.Errorf("xlat: no route to new address: %w", err)
			}
			t.rules[i] = &activeRule{Rule: r, newDst: dst}
			return nil
		}
	}
	dst, err := t.stack.MakeDst(r.NewAddr)
	if err != nil {
		return fmt.Errorf("xlat: no route to new address: %w", err)
	}
	t.rules = append(t.rules, &activeRule{Rule: r, newDst: dst})
	if !t.hooked {
		t.outHook = t.stack.RegisterHook(netstack.HookLocalOut, 0, t.outFn)
		t.inHook = t.stack.RegisterHook(netstack.HookLocalIn, 0, t.inFn)
		t.hooked = true
	}
	return nil
}

// sameMatch reports whether two rules select the same packets (they may
// differ in NewAddr and Epoch).
func sameMatch(a, b Rule) bool {
	return a.Proto == b.Proto && a.OldAddr == b.OldAddr &&
		a.LocalPort == b.LocalPort && a.RemotePort == b.RemotePort
}

// Remove deactivates a rule. Exact match, epoch included: a rollback from
// a superseded owner cannot remove the rule a higher epoch installed.
func (t *Translator) Remove(r Rule) {
	for i, ar := range t.rules {
		if ar.Rule == r {
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			break
		}
	}
	t.maybeUnhook()
}

// removeMatch drops a sameMatch rule at or below r's epoch (identity
// installs); dropping a higher-epoch rule on a stale requester's word
// would un-fence the flow, so that is refused.
func (t *Translator) removeMatch(r Rule) error {
	for i, ar := range t.rules {
		if sameMatch(ar.Rule, r) {
			if r.Epoch < ar.Epoch {
				t.Stale++
				return fmt.Errorf("xlat: stale identity install for %v (epoch %d < %d)",
					r, r.Epoch, ar.Epoch)
			}
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			break
		}
	}
	t.maybeUnhook()
	return nil
}

// FenceRemotePort raises the minimum acceptable rule epoch for a
// migrated service's port and garbage-collects installed rules below it.
// Returns the number of rules dropped.
func (t *Translator) FenceRemotePort(port uint16, ep uint64) int {
	if cur := t.fences[port]; ep <= cur {
		return 0
	}
	t.fences[port] = ep
	dropped := 0
	kept := t.rules[:0]
	for _, ar := range t.rules {
		if ar.RemotePort == port && ar.Epoch < ep {
			t.Stale++
			dropped++
			continue
		}
		kept = append(kept, ar)
	}
	t.rules = kept
	t.maybeUnhook()
	return dropped
}

// PortFence returns the current fence epoch for a service port (0 =
// unfenced).
func (t *Translator) PortFence(port uint16) uint64 { return t.fences[port] }

func (t *Translator) maybeUnhook() {
	if len(t.rules) == 0 && t.hooked {
		t.stack.UnregisterHook(t.outHook)
		t.stack.UnregisterHook(t.inHook)
		t.hooked = false
	}
}

// Rules returns active rules (for the conductor's bookkeeping).
func (t *Translator) Rules() []Rule {
	out := make([]Rule, len(t.rules))
	for i, ar := range t.rules {
		out[i] = ar.Rule
	}
	return out
}

// LookupPeer resolves the *current* location of the remote endpoint of a
// local connection: if a translation rule is redirecting the flow, the
// peer really lives at the rule's NewAddr. This is what lets a process
// migrate even when its in-cluster peer has itself migrated before
// (both-ends migration, the paper's §VI-C future work): the local
// translation table remembers where the peer went.
func (t *Translator) LookupPeer(proto byte, remoteAddr netsim.Addr, localPort, remotePort uint16) (netsim.Addr, bool) {
	for _, ar := range t.rules {
		if ar.Proto == proto && ar.OldAddr == remoteAddr &&
			ar.LocalPort == localPort && ar.RemotePort == remotePort {
			return ar.NewAddr, true
		}
	}
	return 0, false
}

// FlowRule returns the full rule redirecting the given local flow, if
// one is installed. The migration engine replicates it onto the
// destination node so a migrating socket keeps reaching a peer that
// itself migrated earlier.
func (t *Translator) FlowRule(proto byte, remoteAddr netsim.Addr, localPort, remotePort uint16) (Rule, bool) {
	for _, ar := range t.rules {
		if ar.Proto == proto && ar.OldAddr == remoteAddr &&
			ar.LocalPort == localPort && ar.RemotePort == remotePort {
			return ar.Rule, true
		}
	}
	return Rule{}, false
}

// RemoveFlow drops any rule matching the given flow (cleanup when the
// local socket of a translated connection migrates away: the rule
// belongs to the departed socket and must not linger).
func (t *Translator) RemoveFlow(proto byte, remoteAddr netsim.Addr, localPort, remotePort uint16) {
	for i, ar := range t.rules {
		if ar.Proto == proto && ar.OldAddr == remoteAddr &&
			ar.LocalPort == localPort && ar.RemotePort == remotePort {
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			break
		}
	}
	t.maybeUnhook()
}

// Stats returns per-rule rewrite counters.
func (t *Translator) Stats(r Rule) (out, in uint64, ok bool) {
	for _, ar := range t.rules {
		if ar.Rule == r {
			return ar.TranslatedOut, ar.TranslatedIn, true
		}
	}
	return 0, 0, false
}

func (t *Translator) outFn(p *netsim.Packet) netstack.Verdict {
	for _, ar := range t.rules {
		if p.Proto == ar.Proto && p.DstIP == ar.OldAddr &&
			p.DstPort == ar.RemotePort && p.SrcPort == ar.LocalPort {
			p.DstIP = ar.NewAddr
			p.Dst = ar.newDst // replace the inherited destination cache entry
			p.FixChecksum()   // the rewritten header invalidates the checksum
			ar.TranslatedOut++
			break
		}
	}
	return netstack.VerdictAccept
}

func (t *Translator) inFn(p *netsim.Packet) netstack.Verdict {
	for _, ar := range t.rules {
		if p.Proto == ar.Proto && p.SrcIP == ar.NewAddr &&
			p.SrcPort == ar.RemotePort && p.DstPort == ar.LocalPort {
			p.SrcIP = ar.OldAddr
			p.FixChecksum()
			ar.TranslatedIn++
			break
		}
	}
	return netstack.VerdictAccept
}
