package xlat

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/simtime"
)

// TransdPort is the UDP port the translation daemon listens on, on every
// node's in-cluster interface.
const TransdPort = 7077

// Wire opcodes.
const (
	opAdd    = 1
	opRemove = 2
	opAck    = 3
	opNak    = 4
)

// Transd is the user-level translation daemon (§II-B): it receives
// address-translation requests from migrating nodes and consults the
// "kernel" (the Translator) to install the appropriate filters.
type Transd struct {
	stack *netstack.Stack
	xl    *Translator
	sock  *netstack.UDPSocket

	// Requests counts handled messages, for tests and monitoring.
	Requests uint64
}

// StartTransd launches the daemon on a node's stack, bound to its
// in-cluster address.
func StartTransd(st *netstack.Stack, localIP netsim.Addr) (*Transd, error) {
	d := &Transd{stack: st, xl: NewTranslator(st)}
	d.sock = netstack.NewUDPSocket(st)
	if err := d.sock.Bind(localIP, TransdPort); err != nil {
		return nil, fmt.Errorf("transd: %w", err)
	}
	d.sock.OnReadable = d.serve
	return d, nil
}

// Translator exposes the daemon's filter table.
func (d *Transd) Translator() *Translator { return d.xl }

func (d *Transd) serve() {
	for {
		dg, ok := d.sock.Recv()
		if !ok {
			return
		}
		d.Requests++
		op, reqID, rule, err := decodeRequest(dg.Payload)
		resp := byte(opAck)
		if err != nil {
			resp = opNak
		} else {
			switch op {
			case opAdd:
				if err := d.xl.Install(rule); err != nil {
					resp = opNak
				}
			case opRemove:
				d.xl.Remove(rule)
			default:
				resp = opNak
			}
		}
		ack := make([]byte, 5)
		ack[0] = resp
		binary.BigEndian.PutUint32(ack[1:], reqID)
		_ = d.sock.SendTo(dg.SrcIP, dg.SrcPort, ack)
	}
}

func encodeRequest(op byte, reqID uint32, r Rule) []byte {
	b := make([]byte, 26)
	b[0] = op
	binary.BigEndian.PutUint32(b[1:], reqID)
	b[5] = r.Proto
	binary.BigEndian.PutUint32(b[6:], uint32(r.OldAddr))
	binary.BigEndian.PutUint32(b[10:], uint32(r.NewAddr))
	binary.BigEndian.PutUint16(b[14:], r.LocalPort)
	binary.BigEndian.PutUint16(b[16:], r.RemotePort)
	binary.BigEndian.PutUint64(b[18:], r.Epoch)
	return b
}

func decodeRequest(b []byte) (op byte, reqID uint32, r Rule, err error) {
	if len(b) < 18 {
		return 0, 0, r, errors.New("transd: short request")
	}
	op = b[0]
	reqID = binary.BigEndian.Uint32(b[1:])
	r = Rule{
		Proto:      b[5],
		OldAddr:    netsim.Addr(binary.BigEndian.Uint32(b[6:])),
		NewAddr:    netsim.Addr(binary.BigEndian.Uint32(b[10:])),
		LocalPort:  binary.BigEndian.Uint16(b[14:]),
		RemotePort: binary.BigEndian.Uint16(b[16:]),
	}
	// Pre-epoch senders used 18-byte frames; their rules carry the legacy
	// unfenced epoch 0.
	if len(b) >= 26 {
		r.Epoch = binary.BigEndian.Uint64(b[18:])
	}
	return op, reqID, r, nil
}

// Client issues translation requests to remote transd daemons with
// retries, used by the migration engine for in-cluster connections.
type Client struct {
	stack *netstack.Stack
	sock  *netstack.UDPSocket
	sched *simtime.Scheduler

	nextReq uint32
	pending map[uint32]*pendingReq
}

type pendingReq struct {
	payload []byte
	peer    netsim.Addr
	tries   int
	timer   *simtime.Event
	done    func(error)
}

// NewClient creates a requester bound to an ephemeral port on the node's
// in-cluster address.
func NewClient(st *netstack.Stack, localIP netsim.Addr) *Client {
	c := &Client{stack: st, sched: st.Scheduler(), pending: make(map[uint32]*pendingReq)}
	c.sock = netstack.NewUDPSocket(st)
	c.sock.BindEphemeral(localIP)
	c.sock.OnReadable = c.handleAcks
	return c
}

const (
	clientRetries = 4
	clientTimeout = 100 * simtime.Duration(1e6) // 100ms
)

// Request asks the transd on peer to add (add=true) or remove a rule;
// done fires with nil on ack, an error on nak or timeout.
func (c *Client) Request(peer netsim.Addr, add bool, r Rule, done func(error)) {
	op := byte(opRemove)
	if add {
		op = opAdd
	}
	c.nextReq++
	id := c.nextReq
	pr := &pendingReq{payload: encodeRequest(op, id, r), peer: peer, done: done}
	c.pending[id] = pr
	c.sendAttempt(id, pr)
}

func (c *Client) sendAttempt(id uint32, pr *pendingReq) {
	pr.tries++
	_ = c.sock.SendTo(pr.peer, TransdPort, pr.payload)
	pr.timer = c.sched.After(clientTimeout, "transd.retry", func() {
		pr.timer = nil // fired; the event pointer is dead
		if _, live := c.pending[id]; !live {
			return
		}
		if pr.tries >= clientRetries {
			delete(c.pending, id)
			if pr.done != nil {
				pr.done(fmt.Errorf("transd: no answer from %s after %d tries", pr.peer, pr.tries))
			}
			return
		}
		c.sendAttempt(id, pr)
	})
}

func (c *Client) handleAcks() {
	for {
		dg, ok := c.sock.Recv()
		if !ok {
			return
		}
		if len(dg.Payload) < 5 {
			continue
		}
		id := binary.BigEndian.Uint32(dg.Payload[1:])
		pr, live := c.pending[id]
		if !live {
			continue
		}
		delete(c.pending, id)
		c.sched.Cancel(pr.timer)
		pr.timer = nil
		var err error
		if dg.Payload[0] == opNak {
			err = fmt.Errorf("transd: peer %s rejected request", dg.SrcIP)
		}
		if pr.done != nil {
			pr.done(err)
		}
	}
}

// Outstanding reports in-flight requests (for tests).
func (c *Client) Outstanding() int { return len(c.pending) }
