package eval

import (
	"bytes"
	"testing"

	"dvemig/internal/obs"
)

// TestObsParallelMatchesSerial is the determinism contract of the
// observability plane: the -trace-out and -metrics-out artifacts of an
// observed sweep must be byte-identical whether the sweep ran on 1, 4
// or 8 workers. Each cell owns a private scheduler and a private obs
// plane, captures merge in canonical (conns-major, strategy-minor,
// repeat-ordered) order, and the exporters emit in recorded order — so
// worker scheduling can never leak into the files. The CI build-test
// job runs this under -race, which also proves the observed cells
// share no mutable state.
func TestObsParallelMatchesSerial(t *testing.T) {
	conns := []int{16, 32}
	repeats := 2
	if testing.Short() {
		conns = []int{16}
		repeats = 1
	}
	render := func(workers int) (trace, metrics []byte) {
		points, err := RunFreezeSweepObserved(conns, SweepStrategies, repeats, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var caps []*obs.Capture
		for _, pt := range points {
			if len(pt.Caps) != repeats {
				t.Fatalf("workers=%d: point %d/%s has %d captures, want %d",
					workers, pt.Conns, pt.Strategy, len(pt.Caps), repeats)
			}
			caps = append(caps, pt.Caps...)
		}
		var tb, mb bytes.Buffer
		if err := obs.WriteChromeTrace(&tb, caps...); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteMetricsText(&mb, caps...); err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateChromeTrace(tb.Bytes()); err != nil {
			t.Fatalf("workers=%d: invalid trace: %v", workers, err)
		}
		return tb.Bytes(), mb.Bytes()
	}

	refTrace, refMetrics := render(1)
	if len(refTrace) == 0 || len(refMetrics) == 0 {
		t.Fatal("serial artifacts empty")
	}
	for _, w := range []int{4, 8} {
		gotTrace, gotMetrics := render(w)
		if !bytes.Equal(refTrace, gotTrace) {
			t.Errorf("trace artifact differs at workers=%d (%d vs %d bytes)", w, len(refTrace), len(gotTrace))
		}
		if !bytes.Equal(refMetrics, gotMetrics) {
			t.Errorf("metrics artifact differs at workers=%d (%d vs %d bytes)", w, len(refMetrics), len(gotMetrics))
		}
	}
}
