package eval

import (
	"fmt"
	"strings"

	"dvemig/internal/dve"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
	"dvemig/internal/xlat"
)

func startTransdOn(n *proc.Node) (*xlat.Transd, error) {
	return xlat.StartTransd(n.Stack, n.LocalIP)
}

// Fig5bTable renders the freeze-time sweep like the paper's Fig 5b: one
// row per connection count, one column per strategy, values in
// milliseconds.
func Fig5bTable(points []*FreezePoint) string {
	return sweepTable(points, "worst-case process freeze time (ms)", func(p *FreezePoint) string {
		return fmt.Sprintf("%10.1f", float64(p.WorstFreeze)/1e6)
	})
}

// Fig5cTable renders the socket-bytes sweep like Fig 5c (bytes moved in
// the freeze phase).
func Fig5cTable(points []*FreezePoint) string {
	return sweepTable(points, "socket data transferred during freeze (bytes)", func(p *FreezePoint) string {
		return fmt.Sprintf("%10s", fmtBytes(p.WorstSockBytes))
	})
}

func sweepTable(points []*FreezePoint, title string, cell func(*FreezePoint) string) string {
	byKey := map[[2]int]*FreezePoint{}
	conns := map[int]bool{}
	for _, p := range points {
		byKey[[2]int{p.Conns, int(p.Strategy)}] = p
		conns[p.Conns] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%8s", title, "conns")
	for _, s := range SweepStrategies {
		fmt.Fprintf(&b, "%24s", s)
	}
	b.WriteByte('\n')
	for _, n := range SweepConns {
		if !conns[n] {
			continue
		}
		fmt.Fprintf(&b, "%8d", n)
		for _, s := range SweepStrategies {
			if p := byKey[[2]int{n, int(s)}]; p != nil {
				fmt.Fprintf(&b, "%24s", strings.TrimSpace(cell(p)))
			} else {
				fmt.Fprintf(&b, "%24s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fkB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// DVESummary condenses a Fig 5d/e/f run for console output.
func DVESummary(r *dve.Results, lbOn bool) string {
	var b strings.Builder
	label := "disabled"
	if lbOn {
		label = "enabled"
	}
	fmt.Fprintf(&b, "DVE simulation, load balancing %s\n", label)
	fmt.Fprintf(&b, "  migrations: %d, final CPU spread (max-min over last quarter): %.1f%%\n",
		r.Migrations, r.FinalSpread)
	fmt.Fprintf(&b, "  interactivity floor: %.1f updates/s (20 = never degraded)\n", r.WorstUpdateRate())
	for _, name := range r.CPU.Names() {
		s := r.CPU.Get(name)
		tail := s.After(s.Times[len(s.Times)-1] * 3 / 4)
		fmt.Fprintf(&b, "  %s: start %.1f%%, end-mean %.1f%%, max %.1f%%\n",
			name, s.Values[0], tail.Mean(), s.Max())
	}
	if len(r.FreezeTimes) > 0 {
		var worst simtime.Duration
		for _, f := range r.FreezeTimes {
			if f > worst {
				worst = f
			}
		}
		fmt.Fprintf(&b, "  worst migration freeze: %.1fms\n", float64(worst)/1e6)
	}
	return b.String()
}

// StrategyByName parses a CLI strategy flag.
func StrategyByName(s string) (sockmig.Strategy, error) {
	switch strings.ToLower(s) {
	case "iterative":
		return sockmig.Iterative, nil
	case "collective":
		return sockmig.Collective, nil
	case "incremental", "incremental-collective", "incremental collective":
		return sockmig.IncrementalCollective, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (iterative|collective|incremental)", s)
}
