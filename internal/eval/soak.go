package eval

import (
	"fmt"
	"strings"
	"time"

	"dvemig/internal/ctlplane"
	"dvemig/internal/faults"
	"dvemig/internal/flight"
	"dvemig/internal/lb"
	"dvemig/internal/migration"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simprof"
	"dvemig/internal/simtime"
	"dvemig/internal/trace"
)

// SoakEnv is the environment a soak scenario's Arm hook sabotages: a
// five-node cell — three worker nodes running migrator + conductor +
// control-plane agent, a primary controller node and a standby — with a
// fault injector seeded for the run. Control-plane datagrams ride the
// same in-cluster links as migd, so every fault applies to both planes.
type SoakEnv struct {
	Sched    *simtime.Scheduler
	Cluster  *proc.Cluster
	Inj      *faults.Injector
	Workers  []*proc.Node
	CtlNode  *proc.Node
	SbNode   *proc.Node
	Ctl      *ctlplane.Controller
	Standby  *ctlplane.Controller
	Agents   []*ctlplane.Agent
	Migrator []*migration.Migrator
}

// SoakScenario is one named fault script, armed after the healthy cell
// is built and before the request pump starts.
type SoakScenario struct {
	Name string
	Arm  func(env *SoakEnv)
}

// DefaultSoakScenarios is the soak chaos battery. Unlike the chaos
// sweep (one migration under one fault), every scenario here runs under
// a continuous stream of migration requests.
func DefaultSoakScenarios() []SoakScenario {
	allLocal := func(e *SoakEnv, prog func() *faults.Program) {
		for _, n := range e.Cluster.Nodes {
			e.Inj.Attach(n.LocalNIC, prog())
		}
	}
	return []SoakScenario{
		{Name: "healthy", Arm: func(*SoakEnv) {}},
		{Name: "lossy", Arm: func(e *SoakEnv) {
			allLocal(e, func() *faults.Program { return &faults.Program{BaseLoss: 0.03} })
		}},
		{Name: "dup-reorder", Arm: func(e *SoakEnv) {
			allLocal(e, func() *faults.Program {
				return &faults.Program{DupRate: 0.03, ReorderRate: 0.1, ReorderDelay: 2 * time.Millisecond}
			})
		}},
		{Name: "jitter", Arm: func(e *SoakEnv) {
			allLocal(e, func() *faults.Program { return &faults.Program{JitterMax: 1 * time.Millisecond} })
		}},
		{Name: "ctl-crash", Arm: func(e *SoakEnv) {
			// Kill the primary controller's node mid-soak: the standby must
			// take over under a bumped epoch and finish every object without
			// double-driving a single migration.
			e.Inj.CrashAt(e.Cluster, e.CtlNode, e.Sched.Now()+8*1e9)
		}},
		{Name: "ctl-partition", Arm: func(e *SoakEnv) {
			// The primary is partitioned (not dead) for 6s: the standby takes
			// over; when the link heals the fenced ex-primary must demote
			// instead of double-driving.
			from := e.Sched.Now() + 6*1e9
			e.Inj.DownFor(e.CtlNode.LocalNIC, from, from+6*1e9)
		}},
	}
}

// SoakConfig parameterizes a soak sweep.
type SoakConfig struct {
	Scenarios []SoakScenario
	Seeds     []uint64
	// Requests is the number of migration objects pumped per cell.
	Requests int
	// Procs is the number of migratable processes (default 9, spread
	// round-robin across the three workers).
	Procs int
	// Inflight caps concurrently non-terminal objects (default 4).
	Inflight int
	// Strategy pins the memory-movement strategy; "mixed" rotates
	// through all three, "" uses the engine default.
	Strategy string
	// CancelFraction of submissions get a cancel verb shortly after
	// (default 0.02), exercising abort/rollback under load.
	CancelFraction float64
	MigCfg         migration.Config
	// Workers bounds sweep parallelism (cells are private; the report is
	// bit-identical at any worker count).
	Workers int
	// Observe attaches a per-cell observability plane.
	Observe bool
	// FlightDepth, when positive, attaches a flight recorder and dumps
	// its window into SoakResult.FlightDump on an audit violation.
	FlightDepth int
	// Horizon caps a cell's simulated runtime (default 30 sim-minutes);
	// hitting it with non-terminal objects is an audit violation.
	Horizon simtime.Duration
	// SamplePeriod is the streaming-observability cadence: every period
	// the cell's sampler snapshots the registry into time series and runs
	// the incremental audits, so a violation surfaces in its containing
	// window instead of at teardown. 0 selects the default (1 sim-second);
	// negative disables sampling and incremental audits entirely.
	SamplePeriod simtime.Duration
	// MaxSamples bounds each time series' ring (≤0 → 512).
	MaxSamples int
	// SLOs are the objectives the per-cell SLO engine evaluates over the
	// sampled windows (requires Observe). Nil selects DefaultSoakSLOs;
	// empty disables the engine.
	SLOs []obs.Objective
	// Prof, when non-nil, attaches the wall-clock self-profiling plane
	// (event-loop attribution, phase skew, sweep occupancy). Read-only
	// with respect to the simulation: the report, metrics and series
	// artifacts are byte-identical with or without it.
	Prof *simprof.Profiler
}

// soakAuditSlack pads the per-object deadline+grace budget before the
// incremental audit calls an object stuck: a takeover blind window
// (~TakeoverAfter) plus a few reconcile periods of re-drive latency.
const soakAuditSlack = 5 * time.Second

// DefaultSoakSLOs are the soak battery's per-cell objectives, the
// thresholds EXPERIMENTS.md and BENCH_simperf.json track PR-over-PR:
// p99 migration downtime under a quarter simulated second, at most 5%
// of terminal objects aborted, and a retry budget of two per submitted
// request.
func DefaultSoakSLOs() []obs.Objective {
	return []obs.Objective{
		{Name: "downtime-p99", Hist: "mig/downtime_us", Pct: 99, Max: 250e3},
		{Name: "abort-rate", Bad: "soak/aborted_total", Total: "soak/terminal_total", Max: 0.05},
		{Name: "retry-budget", Bad: "soak/retries_total", Total: "soak/submitted_total", Max: 2.0},
	}
}

// DefaultSoakConfig returns a soak tuned so aborts and retries resolve
// quickly enough to pump thousands of requests per simulated hour.
func DefaultSoakConfig() SoakConfig {
	mc := migration.DefaultConfig()
	mc.Deadline = 4 * 1e9
	mc.ConnTimeout = 500 * time.Millisecond
	mc.ConnRetries = 1
	mc.RetryBackoff = 100 * time.Millisecond
	mc.RetryJitter = 0.2
	return SoakConfig{
		Scenarios:      DefaultSoakScenarios(),
		Seeds:          []uint64{1, 2},
		Requests:       500,
		Procs:          9,
		Inflight:       4,
		Strategy:       "mixed",
		CancelFraction: 0.02,
		MigCfg:         mc,
		Horizon:        30 * time.Minute,
	}
}

// SoakResult is one (scenario, seed) cell's outcome and audit verdict.
type SoakResult struct {
	Scenario string
	Seed     uint64
	// Requests submitted; terminal-state breakdown.
	Requests  int
	Succeeded int
	Failed    int
	Aborted   int
	// Retries sums Status.Retries over all objects; CancelsIssued counts
	// accepted cancel verbs.
	Retries       int
	CancelsIssued int
	// Control-plane counters (summed over both controllers / all agents).
	Dispatches uint64
	Resends    uint64
	Dedups     uint64
	StaleCtl   uint64
	Takeovers  uint64
	Demotions  uint64
	// Engine truth: migrations actually driven / completed / rolled back.
	EngineStarted   uint64
	EngineCompleted int
	EngineAborted   int
	// Violations is the audit verdict: exactly-once, single-owner,
	// all-terminal. Empty means the soak held.
	Violations []string
	// FailureCauses samples up to eight Failed objects' cause chains —
	// enough to tell "deadline" from "retries exhausted" in a report.
	FailureCauses []string
	// DowntimesUs lists per completed migration FreezeTime+StallTime in
	// microseconds (p99 via trace.Percentile).
	DowntimesUs []float64
	// TraceHash folds every packet event on all five nodes' in-cluster
	// links; equal hashes mean bit-identical cells.
	TraceHash         uint64
	PendingAfterDrain int
	Obs               *obs.Capture
	FlightDump        string
	// Windows counts emitted sample windows; FirstViolationWindow is the
	// index of the first window whose incremental audit found something
	// (-1 when the run held or sampling was off) — the FlightDump is then
	// scoped to that window via its locator header.
	Windows              int
	FirstViolationWindow int
	// SLO holds the per-cell SLO engine verdicts (nil without Observe).
	SLO []*obs.SLOResult
}

// SoakReport aggregates a sweep.
type SoakReport struct {
	Results []*SoakResult
}

// Captures lists cells' observability captures in canonical order.
func (r *SoakReport) Captures() []*obs.Capture {
	var out []*obs.Capture
	for _, res := range r.Results {
		if res.Obs != nil {
			out = append(out, res.Obs)
		}
	}
	return out
}

// MergedSnapshot sums every observed cell's metric snapshot.
func (r *SoakReport) MergedSnapshot() (*obs.Snapshot, error) {
	caps := r.Captures()
	if len(caps) == 0 {
		return nil, nil
	}
	snaps := make([]*obs.Snapshot, len(caps))
	for i, c := range caps {
		snaps[i] = c.Snap
	}
	return obs.MergeSnapshots(snaps...)
}

// Violations counts cells with a non-empty audit verdict.
func (r *SoakReport) Violations() int {
	n := 0
	for _, res := range r.Results {
		if len(res.Violations) > 0 {
			n++
		}
	}
	return n
}

// MergedSeries sums every observed cell's time series element-wise by
// sample index (nil when no cell sampled).
func (r *SoakReport) MergedSeries() (*obs.SeriesStore, error) {
	var stores []*obs.SeriesStore
	for _, c := range r.Captures() {
		if c.Series != nil {
			stores = append(stores, c.Series)
		}
	}
	if len(stores) == 0 {
		return nil, nil
	}
	return obs.MergeSeriesStores(stores...)
}

// DowntimeP99Us returns the 99th-percentile migration downtime (µs)
// across every completed migration in the sweep (trace.Percentile
// sorts internally).
func (r *SoakReport) DowntimeP99Us() float64 {
	var all []float64
	for _, res := range r.Results {
		all = append(all, res.DowntimesUs...)
	}
	return trace.Percentile(all, 99)
}

// SLOTable renders the per-cell SLO verdicts: the objective's overall
// value against its target, single-window breach count and first
// breach index, and the burn-rate peak per accounting window length.
// Empty when no cell ran the SLO engine.
func (r *SoakReport) SLOTable() string {
	var b strings.Builder
	rows := 0
	for _, res := range r.Results {
		for _, s := range res.SLO {
			if rows == 0 {
				fmt.Fprintf(&b, "slo: per-cell objectives over sampled windows (burnN = peak burn rate over N windows)\n")
				fmt.Fprintf(&b, "%-14s %5s %-14s %10s %10s %-6s %7s %6s %s\n",
					"scenario", "seed", "objective", "target", "overall", "met", "breach", "first", "burn peaks")
			}
			rows++
			burns := ""
			for _, bu := range s.Burns {
				burns += fmt.Sprintf(" burn%d=%.2f", bu.Len, bu.Peak)
			}
			fmt.Fprintf(&b, "%-14s %5d %-14s %10.4g %10.4g %-6v %7d %6d%s\n",
				res.Scenario, res.Seed, s.Name, s.Objective.Max, s.Overall,
				s.Met, s.BreachWindows, s.FirstBreach, burns)
		}
	}
	return b.String()
}

// Table renders the sweep for console output.
func (r *SoakReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: lifecycle outcomes, retries and audits per cell\n")
	fmt.Fprintf(&b, "%-14s %5s %5s %5s %5s %5s %6s %7s %6s %5s %5s %18s\n",
		"scenario", "seed", "req", "ok", "fail", "abort", "retry", "resend", "dedup", "tkovr", "viol", "trace-hash")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-14s %5d %5d %5d %5d %5d %6d %7d %6d %5d %5d %#18x\n",
			res.Scenario, res.Seed, res.Requests, res.Succeeded, res.Failed, res.Aborted,
			res.Retries, res.Resends, res.Dedups, res.Takeovers, len(res.Violations), res.TraceHash)
	}
	var req, ok, fail, abort, retry int
	for _, res := range r.Results {
		req += res.Requests
		ok += res.Succeeded
		fail += res.Failed
		abort += res.Aborted
		retry += res.Retries
	}
	fmt.Fprintf(&b, "total: %d requests, %d succeeded, %d failed, %d aborted, %d retries, %d cells with violations, p99 downtime %.0fµs\n",
		req, ok, fail, abort, retry, r.Violations(), r.DowntimeP99Us())
	return b.String()
}

// RunSoak pumps cfg.Requests migration objects per (scenario, seed)
// cell through the declarative control plane under the chaos battery,
// audits exactly-once and single-owner invariants afterwards, and
// merges results in canonical order — bit-identical at any worker
// count.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	type cell struct {
		sc   SoakScenario
		seed uint64
	}
	cells := make([]cell, 0, len(cfg.Scenarios)*len(cfg.Seeds))
	for _, sc := range cfg.Scenarios {
		for _, seed := range cfg.Seeds {
			cells = append(cells, cell{sc: sc, seed: seed})
		}
	}
	results, err := RunParallelProf(cells, cfg.Workers, cfg.Prof.Sweep("soak-sweep", cfg.Workers), func(c cell) (*SoakResult, error) {
		res, err := runSoakCell(cfg, c.sc, c.seed)
		if err != nil {
			return nil, fmt.Errorf("soak %s seed %d: %w", c.sc.Name, c.seed, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return &SoakReport{Results: results}, nil
}

func runSoakCell(cfg SoakConfig, sc SoakScenario, seed uint64) (*SoakResult, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 500
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 9
	}
	if cfg.Inflight <= 0 {
		cfg.Inflight = 4
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 30 * time.Minute
	}
	const nWorkers = 3
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, nWorkers+2)
	workers := cluster.Nodes[:nWorkers]
	ctlNode, sbNode := cluster.Nodes[nWorkers], cluster.Nodes[nWorkers+1]

	var o *obs.Obs
	if cfg.Observe {
		o = obs.New(sched)
	}
	var fset *flight.Set
	if cfg.FlightDepth > 0 {
		fset = flight.NewSet(cfg.FlightDepth)
		sched.FR = fset.Track("sched")
		for _, n := range cluster.Nodes {
			n.AttachFlight(fset)
		}
	}

	// Per-node sniffers fold into one cell hash in node order.
	sniffs := make([]*fnvSniffer, len(cluster.Nodes))
	for i, n := range cluster.Nodes {
		sniffs[i] = newFnvSniffer()
		n.LocalNIC.AttachSniffer(sniffs[i])
	}

	var skew *simprof.SkewProf
	if cfg.Prof != nil {
		label := fmt.Sprintf("soak/%s/seed%d", sc.Name, seed)
		sched.Prof = cfg.Prof.Loop(label)
		skew = cfg.Prof.Skew(label)
	}

	lcfg := lb.DefaultConfig()
	lcfg.ImbalanceThreshold = 10 // conductors heartbeat but never self-balance
	var migrators []*migration.Migrator
	var agents []*ctlplane.Agent
	var conds []*lb.Conductor
	for _, n := range workers {
		m, err := migration.NewMigrator(n, cfg.MigCfg)
		if err != nil {
			return nil, err
		}
		if o != nil {
			m.SetObs(o)
		}
		m.Prof = skew
		cd, err := lb.NewConductor(n, m, lcfg)
		if err != nil {
			return nil, err
		}
		a, err := ctlplane.NewAgent(n, m, cd)
		if err != nil {
			return nil, err
		}
		migrators = append(migrators, m)
		conds = append(conds, cd)
		agents = append(agents, a)
	}

	ccfg := ctlplane.DefaultConfig()
	ccfg.Retry = migration.BackoffPolicy{Base: 200 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.3}
	// With Inflight objects racing over three source nodes, "lb slot
	// busy" collisions are routine — give the reconcile loop enough
	// retry budget to wait a slot-holder out.
	ccfg.MaxRetries = 6
	ccfg.Deadline = 10 * time.Second
	ccfg.CancelGrace = 3 * time.Second
	ccfg.Seed = seed
	ctl, err := ctlplane.NewController(ctlNode, sbNode.LocalIP, true, ccfg)
	if err != nil {
		return nil, err
	}
	standby, err := ctlplane.NewController(sbNode, ctlNode.LocalIP, false, ccfg)
	if err != nil {
		return nil, err
	}

	// Terminal tracking across both controllers (the soak survives a
	// takeover mid-run): an object is done the first time either
	// controller parks it.
	done := make(map[uint64]bool)
	onT := func(obj *ctlplane.Object, _, to ctlplane.State) {
		if to.Terminal() {
			done[obj.Spec.ID] = true
		}
	}
	ctl.OnTransition = onT
	standby.OnTransition = onT

	// The migratable fleet.
	names := make([]string, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		n := workers[i%nWorkers]
		name := fmt.Sprintf("svc%02d", i)
		names[i] = name
		p := n.Spawn(name, 1)
		v := p.AS.Mmap(8*proc.PageSize, "rw-")
		p.CPUDemand = 0.1
		idx := uint64(i)
		p.Tick = func(self *proc.Process) {
			self.AS.Touch(v.Start + (idx%8)*proc.PageSize)
		}
		n.StartLoop(p, 200*time.Millisecond)
	}
	// locate finds a service's current (unique) home among the workers.
	locate := func(name string) (*proc.Process, *proc.Node) {
		for _, n := range workers {
			for _, p := range n.Processes() {
				if p.Name == name {
					return p, n
				}
			}
		}
		return nil, nil
	}
	// primary picks the controller to submit to. During a partition both
	// may claim primacy for a moment — the higher epoch is the one whose
	// directives the fenced agents will accept.
	primary := func() *ctlplane.Controller {
		var pick *ctlplane.Controller
		for _, c := range []*ctlplane.Controller{ctl, standby} {
			if c.Primary && c.Node.Alive && (pick == nil || c.Epoch() > pick.Epoch()) {
				pick = c
			}
		}
		return pick
	}

	inj := faults.NewInjector(sched, seed)
	inj.Obs = o
	env := &SoakEnv{Sched: sched, Cluster: cluster, Inj: inj,
		Workers: workers, CtlNode: ctlNode, SbNode: sbNode,
		Ctl: ctl, Standby: standby, Agents: agents, Migrator: migrators}
	if sc.Arm != nil {
		sc.Arm(env)
	}

	res := &SoakResult{Scenario: sc.Name, Seed: seed, FirstViolationWindow: -1}
	rng := simtime.NewRand(seed ^ 0x736f616b)
	strategies := migration.StrategyNames()
	submitted := 0
	submittedIDs := make([]uint64, 0, cfg.Requests)
	inflightName := make(map[string]uint64) // service → open object
	idName := make(map[uint64]string)

	// violate records an audit violation once: a condition that persists
	// across sample windows (or reappears at teardown) is reported in its
	// first containing window only, keyed by its stable message text.
	seenViol := make(map[string]bool)
	violate := func(msg string) bool {
		if seenViol[msg] {
			return false
		}
		seenViol[msg] = true
		return true
	}

	// Streaming observability: a sim-time sampler snapshots the registry
	// into ring series every period and runs the incremental audits — the
	// mid-run half of the teardown audit suite, restricted to invariants
	// that hold at any instant (a service may legally run on 0 nodes
	// inside a freeze window, never on 2).
	samplePeriod := cfg.SamplePeriod
	if samplePeriod == 0 {
		samplePeriod = time.Second
	}
	var sampler *obs.Sampler
	var sloEng *obs.SLOEngine
	if samplePeriod > 0 {
		sampler = obs.NewSampler(sched, o.M(), samplePeriod, cfg.MaxSamples)
		if o != nil {
			o.Sampler = sampler
			// Idempotent scrape: cluster totals plus the soak's own
			// monotonic request-lifecycle counters, re-stored every window.
			sampler.Harvest = func(r *obs.Registry) {
				obs.HarvestCluster(r, cluster)
				r.Counter("soak/submitted_total").Store(uint64(submitted))
				r.Counter("soak/terminal_total").Store(uint64(len(done)))
				var retries, aborted uint64
				for _, id := range submittedIDs {
					obj := ctl.Get(id)
					if obj == nil {
						obj = standby.Get(id)
					}
					if obj == nil {
						continue
					}
					retries += uint64(obj.Status.Retries)
					if obj.Status.State == ctlplane.Aborted {
						aborted++
					}
				}
				r.Counter("soak/retries_total").Store(retries)
				r.Counter("soak/aborted_total").Store(aborted)
			}
			slos := cfg.SLOs
			if slos == nil {
				slos = DefaultSoakSLOs()
			}
			if len(slos) > 0 {
				sloEng = obs.NewSLOEngine(slos...)
				sampler.AttachSLO(sloEng)
			}
		}
		sampler.OnSample(func(w obs.SampleWindow) {
			res.Windows = w.Index + 1
			var found []string
			// Single-owner, mid-run form: >1 running is always a fork
			// (0 is legal inside a freeze window).
			for _, name := range names {
				running := 0
				for _, n := range workers {
					for _, p := range n.Processes() {
						if p.Name == name && p.State == proc.ProcRunning {
							running++
						}
					}
				}
				if running > 1 {
					found = append(found,
						fmt.Sprintf("single-owner broken: %s running on %d nodes", name, running))
				}
			}
			// Exactly-once, mid-run form: the engine can never have settled
			// more migrations than the agents started.
			var started uint64
			settled := 0
			for _, a := range agents {
				started += a.Started
			}
			for _, m := range migrators {
				settled += len(m.Completed) + len(m.Aborted)
			}
			if uint64(settled) > started {
				found = append(found,
					fmt.Sprintf("exactly-once broken: engine settled %d migrations but agents only started %d", settled, started))
			}
			found = append(found, ctlplane.AuditLive(ctl, standby, soakAuditSlack)...)
			fresh := false
			for _, f := range found {
				if violate(f) {
					fresh = true
					res.Violations = append(res.Violations,
						fmt.Sprintf("window %d [%v, %v): %s", w.Index, w.From, w.To, f))
				}
			}
			if fresh && res.FirstViolationWindow < 0 {
				res.FirstViolationWindow = w.Index
				if fset != nil {
					var b strings.Builder
					fset.DumpWindow(&b, w.Index, int64(w.From), int64(w.To))
					res.FlightDump = b.String()
				}
			}
		})
		sampler.Start()
	}

	pump := simtime.NewTicker(sched, 120*time.Millisecond, "soak.pump", func() {
		pr := primary()
		if pr == nil {
			return // takeover window: no one to submit to
		}
		// Reap finished names so the next pick can reuse them.
		for name, id := range inflightName {
			if done[id] {
				delete(inflightName, name)
			}
		}
		for submitted < cfg.Requests && len(submittedIDs)-len(done) < cfg.Inflight {
			name := names[rng.Intn(len(names))]
			if _, open := inflightName[name]; open {
				return // try again next tick — keeps the rng sequence state-driven
			}
			p, home := locate(name)
			if p == nil || p.State != proc.ProcRunning {
				return
			}
			dest := workers[rng.Intn(nWorkers)]
			if dest == home {
				dest = workers[(rng.Intn(nWorkers-1)+1+indexOf(workers, home))%nWorkers]
			}
			strat := cfg.Strategy
			if strat == "mixed" {
				strat = strategies[submitted%len(strategies)]
			}
			obj, err := pr.Submit(ctlplane.Spec{
				PID: p.PID, Name: name, Source: home.LocalIP, Dest: dest.LocalIP,
				Strategy: strat, MaxRetries: -1,
			})
			if err != nil {
				return
			}
			submitted++
			submittedIDs = append(submittedIDs, obj.Spec.ID)
			inflightName[name] = obj.Spec.ID
			idName[obj.Spec.ID] = name
			if cfg.CancelFraction > 0 && rng.Float64() < cfg.CancelFraction {
				id := obj.Spec.ID
				delay := simtime.Duration(rng.Intn(400)) * time.Millisecond
				sched.After(delay, "soak.cancel", func() {
					if pr := primary(); pr != nil {
						if pr.Cancel(id, "soak cancel") == nil {
							res.CancelsIssued++
						}
					}
				})
			}
		}
	})
	pump.Start()

	// Run until every submitted object is terminal (or the horizon trips).
	limitAt := sched.Now() + cfg.Horizon
	for sched.Now() < limitAt {
		sched.RunFor(1 * 1e9)
		if submitted >= cfg.Requests && len(done) >= submitted {
			break
		}
	}
	pump.Stop()

	// Stop every periodic service, then drain to quiescence.
	ctl.Stop()
	standby.Stop()
	for _, cd := range conds {
		cd.Stop()
	}
	for _, a := range agents {
		a.Stop()
	}
	sched.RunFor(2 * 1e9) // let in-flight engine work settle
	sampler.Stop()        // the drain below must not chase sampler ticks forever
	for _, n := range workers {
		for _, p := range n.Processes() {
			n.StopLoop(p)
		}
	}
	limit := sched.Now() + 3600*1e9
	for sched.Pending() > 0 {
		next, _ := sched.NextEventTime()
		if next > limit {
			break
		}
		sched.RunUntil(next)
	}
	res.PendingAfterDrain = sched.Pending()

	// ---- audits ----
	// The surviving primary is authoritative; objects a fenced ex-primary
	// parked before its replicas ever flowed exist only on that side.
	auth, other := ctl, standby
	if !auth.Primary || !auth.Node.Alive {
		auth, other = standby, ctl
	}
	// Teardown audits run through the same dedup as the incremental ones:
	// a violation already reported in its containing sample window is not
	// re-reported here.
	res.Requests = submitted
	for _, id := range submittedIDs {
		obj := auth.Get(id)
		if obj == nil {
			obj = other.Get(id)
		}
		if obj == nil {
			if msg := fmt.Sprintf("object #%d (%s) lost across controllers", id, idName[id]); violate(msg) {
				res.Violations = append(res.Violations, msg)
			}
			continue
		}
		res.Retries += obj.Status.Retries
		switch obj.Status.State {
		case ctlplane.Succeeded:
			res.Succeeded++
		case ctlplane.Failed:
			res.Failed++
			if len(res.FailureCauses) < 8 {
				res.FailureCauses = append(res.FailureCauses,
					fmt.Sprintf("#%d %s: %s", id, idName[id], strings.Join(obj.Status.Cause, " | ")))
			}
		case ctlplane.Aborted:
			res.Aborted++
		default:
			if msg := fmt.Sprintf("object #%d (%s) not terminal: %s after %v",
				id, idName[id], obj.Status.State, obj.Status.Cause); violate(msg) {
				res.Violations = append(res.Violations, msg)
			}
		}
	}

	// Single-owner: every service runs on exactly one worker.
	for _, name := range names {
		running := 0
		for _, n := range workers {
			for _, p := range n.Processes() {
				if p.Name == name && p.State == proc.ProcRunning {
					running++
				}
			}
		}
		if running != 1 {
			if msg := fmt.Sprintf("single-owner broken: %s running on %d nodes", name, running); violate(msg) {
				res.Violations = append(res.Violations, msg)
			}
		}
	}

	// Exactly-once: every migration the agents started is accounted for
	// by the engine exactly once — completed or rolled back, never both,
	// never duplicated by a probe, a replay or a controller takeover.
	for _, a := range agents {
		res.EngineStarted += a.Started
		res.Dedups += a.Deduped
		res.StaleCtl += a.StaleCtl
	}
	for _, m := range migrators {
		res.EngineCompleted += len(m.Completed)
		res.EngineAborted += len(m.Aborted)
		for _, mt := range m.Completed {
			res.DowntimesUs = append(res.DowntimesUs,
				float64(mt.FreezeTime+mt.StallTime)/float64(time.Microsecond))
		}
	}
	if int(res.EngineStarted) != res.EngineCompleted+res.EngineAborted {
		msg := fmt.Sprintf("exactly-once broken: agents started %d migrations, engine settled %d (%d completed + %d aborted)",
			res.EngineStarted, res.EngineCompleted+res.EngineAborted,
			res.EngineCompleted, res.EngineAborted)
		if violate(msg) {
			res.Violations = append(res.Violations, msg)
		}
	}
	res.Dispatches = ctl.Dispatches + standby.Dispatches
	res.Resends = ctl.Resends + standby.Resends
	res.Takeovers = ctl.Takeovers + standby.Takeovers
	res.Demotions = ctl.Demotions + standby.Demotions

	// Fold the per-node hashes in node order.
	master := newFnvSniffer()
	for _, s := range sniffs {
		master.word(s.h)
	}
	res.TraceHash = master.h

	// Close the final partial window: the teardown tail gets sampled and
	// audited like every full window, then the capture folds the series
	// and SLO verdicts in.
	sampler.Flush()
	if sloEng != nil {
		res.SLO = sloEng.Results()
	}
	if o != nil {
		obs.HarvestCluster(o.Metrics, cluster)
		res.Obs = o.Capture(fmt.Sprintf("soak/%s/seed%d", sc.Name, seed))
	}
	if fset != nil && len(res.Violations) > 0 && res.FlightDump == "" {
		// Teardown-only discovery (sampling off, or a violation only
		// expressible at quiescence): dump without a window anchor.
		var b strings.Builder
		fset.Dump(&b)
		res.FlightDump = b.String()
	}
	return res, nil
}

func indexOf(ns []*proc.Node, n *proc.Node) int {
	for i, x := range ns {
		if x == n {
			return i
		}
	}
	return 0
}
