package eval

import (
	"testing"
	"time"
)

func shortSoakConfig() SoakConfig {
	cfg := DefaultSoakConfig()
	cfg.Seeds = []uint64{1, 2}
	cfg.Requests = 40
	cfg.Horizon = 10 * time.Minute
	return cfg
}

// TestSoakShortSweepHoldsAudits runs the full chaos battery at reduced
// request volume: every cell must finish with every object terminal and
// zero exactly-once / single-owner violations.
func TestSoakShortSweepHoldsAudits(t *testing.T) {
	cfg := shortSoakConfig()
	cfg.FlightDepth = 256
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(cfg.Scenarios)*len(cfg.Seeds) {
		t.Fatalf("got %d cells", len(rep.Results))
	}
	for _, res := range rep.Results {
		if len(res.Violations) > 0 {
			t.Errorf("%s/seed%d violations: %v\nflight:\n%s",
				res.Scenario, res.Seed, res.Violations, res.FlightDump)
		}
		if res.Requests != cfg.Requests {
			t.Errorf("%s/seed%d submitted %d/%d requests", res.Scenario, res.Seed, res.Requests, cfg.Requests)
		}
		if res.Succeeded == 0 {
			t.Errorf("%s/seed%d: no migration succeeded", res.Scenario, res.Seed)
		}
		if res.Succeeded+res.Failed+res.Aborted != res.Requests {
			t.Errorf("%s/seed%d: terminal breakdown %d+%d+%d != %d", res.Scenario, res.Seed,
				res.Succeeded, res.Failed, res.Aborted, res.Requests)
		}
	}
	t.Logf("\n%s", rep.Table())
}

// TestSoakDeterministicAcrossWorkerCounts re-runs the same sweep at
// worker counts 1, 4 and 8: the per-cell trace hashes, outcome counts
// and retry counts must be byte-identical — cells are fully private and
// scheduling order inside a cell depends only on sim state.
func TestSoakDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := shortSoakConfig()
	cfg.Scenarios = DefaultSoakScenarios()[:3] // healthy, lossy, dup-reorder
	cfg.Seeds = []uint64{7}
	base, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, 8} {
		c2 := cfg
		c2.Workers = w
		rep, err := RunSoak(c2)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range rep.Results {
			b := base.Results[i]
			if res.TraceHash != b.TraceHash {
				t.Errorf("workers=%d %s/seed%d trace hash %#x != %#x",
					w, res.Scenario, res.Seed, res.TraceHash, b.TraceHash)
			}
			if res.Succeeded != b.Succeeded || res.Failed != b.Failed ||
				res.Aborted != b.Aborted || res.Retries != b.Retries ||
				res.Dispatches != b.Dispatches || res.Resends != b.Resends {
				t.Errorf("workers=%d %s/seed%d outcome drift: %+v vs %+v", w, res.Scenario, res.Seed, res, b)
			}
		}
	}
}

// TestSoakControllerCrashRecovers pins the ctl-crash scenario: the
// primary dies 8s in, the standby must take over exactly once and still
// land every object terminal without violations.
func TestSoakControllerCrashRecovers(t *testing.T) {
	cfg := shortSoakConfig()
	for _, sc := range DefaultSoakScenarios() {
		if sc.Name == "ctl-crash" {
			cfg.Scenarios = []SoakScenario{sc}
		}
	}
	cfg.Seeds = []uint64{3}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Takeovers != 1 {
		t.Fatalf("takeovers = %d, want 1", res.Takeovers)
	}
	if res.Succeeded == 0 {
		t.Fatal("nothing succeeded after takeover")
	}
}

// TestSoakObserveMerges checks the obs plumbing: captures merge.
func TestSoakObserveMerges(t *testing.T) {
	cfg := shortSoakConfig()
	cfg.Scenarios = DefaultSoakScenarios()[:1]
	cfg.Seeds = []uint64{1}
	cfg.Requests = 12
	cfg.Observe = true
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Captures()) != 1 {
		t.Fatalf("captures = %d", len(rep.Captures()))
	}
	snap, err := rep.MergedSnapshot()
	if err != nil || snap == nil {
		t.Fatalf("merge: %v %v", snap, err)
	}
}
