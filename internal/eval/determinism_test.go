package eval

import (
	"reflect"
	"testing"

	"dvemig/internal/sockmig"
)

// TestFig5bPointDeterminism runs one Fig 5b measurement cell twice and
// demands bit-identical metrics: the whole evaluation pipeline — traffic
// generation, migration, socket-state accounting — must be a pure
// function of its configuration. Together with
// TestChaosScenarioDeterminism (same property under an armed fault
// scenario, including the packet-trace hash) this pins down the
// reproducibility claim for both the healthy and the chaotic paths.
func TestFig5bPointDeterminism(t *testing.T) {
	run := func() *FreezePoint {
		fc := DefaultFreezeConfig(sockmig.IncrementalCollective, 64)
		fc.Repeats = 2
		pt, err := RunFreezePoint(fc)
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	a, b := run(), run()
	if a.WorstFreeze != b.WorstFreeze {
		t.Fatalf("WorstFreeze differs: %v vs %v", a.WorstFreeze, b.WorstFreeze)
	}
	if a.WorstSockBytes != b.WorstSockBytes {
		t.Fatalf("WorstSockBytes differs: %d vs %d", a.WorstSockBytes, b.WorstSockBytes)
	}
	if a.ClientRetransmits != b.ClientRetransmits {
		t.Fatalf("ClientRetransmits differs: %d vs %d", a.ClientRetransmits, b.ClientRetransmits)
	}
	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(a.Runs), len(b.Runs))
	}
	for i := range a.Runs {
		if !reflect.DeepEqual(a.Runs[i], b.Runs[i]) {
			t.Fatalf("repeat %d metrics differ:\n%+v\nvs\n%+v", i, a.Runs[i], b.Runs[i])
		}
	}
}
