package eval

import (
	"strings"
	"testing"
	"time"

	"dvemig/internal/sockmig"
)

func TestFreezePointOrderingSmall(t *testing.T) {
	results := map[sockmig.Strategy]*FreezePoint{}
	for _, s := range SweepStrategies {
		fc := DefaultFreezeConfig(s, 64)
		fc.Repeats = 1
		pt, err := RunFreezePoint(fc)
		if err != nil {
			t.Fatal(err)
		}
		results[s] = pt
	}
	it, co, inc := results[sockmig.Iterative], results[sockmig.Collective], results[sockmig.IncrementalCollective]
	if !(it.WorstFreeze > co.WorstFreeze && co.WorstFreeze > inc.WorstFreeze) {
		t.Fatalf("freeze ordering violated: it=%v co=%v inc=%v",
			it.WorstFreeze, co.WorstFreeze, inc.WorstFreeze)
	}
	if inc.WorstSockBytes*2 > co.WorstSockBytes {
		t.Fatalf("incremental bytes %d not ≪ collective %d", inc.WorstSockBytes, co.WorstSockBytes)
	}
	// Full-state strategies move the same bytes (same data, different
	// message pattern).
	ratio := float64(it.WorstSockBytes) / float64(co.WorstSockBytes)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("iterative vs collective bytes diverge: %v", ratio)
	}
	// Capture keeps clients from retransmitting.
	for s, pt := range results {
		if pt.ClientRetransmits != 0 {
			t.Fatalf("%v: clients retransmitted %d times with capture on", s, pt.ClientRetransmits)
		}
	}
}

func TestFreezeBytesScaleRoughlyLinearly(t *testing.T) {
	get := func(n int) uint64 {
		fc := DefaultFreezeConfig(sockmig.Collective, n)
		fc.Repeats = 1
		pt, err := RunFreezePoint(fc)
		if err != nil {
			t.Fatal(err)
		}
		return pt.WorstSockBytes
	}
	b32, b128 := get(32), get(128)
	ratio := float64(b128) / float64(b32)
	if ratio < 3.2 || ratio > 4.8 {
		t.Fatalf("bytes ratio 128/32 = %v, want ≈4", ratio)
	}
}

func TestTables(t *testing.T) {
	fc := DefaultFreezeConfig(sockmig.IncrementalCollective, 16)
	fc.Repeats = 1
	pt, err := RunFreezePoint(fc)
	if err != nil {
		t.Fatal(err)
	}
	fb := Fig5bTable([]*FreezePoint{pt})
	if !strings.Contains(fb, "16") || !strings.Contains(fb, "incremental") {
		t.Fatalf("fig5b table:\n%s", fb)
	}
	fcT := Fig5cTable([]*FreezePoint{pt})
	if !strings.Contains(fcT, "kB") && !strings.Contains(fcT, "B") {
		t.Fatalf("fig5c table:\n%s", fcT)
	}
	// Missing cells render as dashes.
	if !strings.Contains(fb, "-") {
		t.Fatal("missing strategies should show dashes")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512B",
		2048:    "2.0kB",
		3 << 20: "3.00MB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Fatalf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestStrategyByName(t *testing.T) {
	for name, want := range map[string]sockmig.Strategy{
		"iterative": sockmig.Iterative, "Collective": sockmig.Collective,
		"incremental": sockmig.IncrementalCollective,
	} {
		got, err := StrategyByName(name)
		if err != nil || got != want {
			t.Fatalf("StrategyByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := StrategyByName("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestDispatchComparisonBroadcastBeatsNAT(t *testing.T) {
	cfg := DefaultDispatchConfig()
	broadcast, nat, err := RunDispatchComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if broadcast.Lost > 0 {
		t.Fatalf("broadcast+capture lost %d datagrams", broadcast.Lost)
	}
	// NAT loses about rate × (freeze ∪ update window) = 1000/s × 10ms ≈ 10.
	if nat.Lost < 5 {
		t.Fatalf("NAT baseline lost only %d datagrams; window not modelled", nat.Lost)
	}
	if nat.Lost > 20 {
		t.Fatalf("NAT baseline lost %d datagrams; way beyond the window", nat.Lost)
	}
	if broadcast.Sent != nat.Sent {
		t.Fatalf("runs not comparable: %d vs %d sent", broadcast.Sent, nat.Sent)
	}
	if !strings.Contains(nat.Mode, "nat") || !strings.Contains(broadcast.Mode, "broadcast") {
		t.Fatal("mode labels wrong")
	}
}

func TestDispatchNATUpdateEventuallyHeals(t *testing.T) {
	cfg := DefaultDispatchConfig()
	cfg.Duration = 3 * time.Duration(1e9)
	_, nat, err := RunDispatchComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Loss is bounded by the window: tripling the run must not triple it.
	if nat.Lost > 25 {
		t.Fatalf("loss grew with run length: %d", nat.Lost)
	}
}
