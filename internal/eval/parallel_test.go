package eval

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestRunParallelOrder checks the canonical-order merge: results land at
// their cell's index regardless of worker count or completion order.
func TestRunParallelOrder(t *testing.T) {
	cells := make([]int, 100)
	for i := range cells {
		cells[i] = i
	}
	for _, workers := range []int{0, 1, 3, 7, 200} {
		out, err := RunParallel(cells, workers, func(c int) (int, error) {
			return c * c, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunParallelErrors checks the error policy: every cell runs even
// when some fail, and the reported error is the first failure in
// canonical cell order — not the first to happen on the wall clock.
func TestRunParallelErrors(t *testing.T) {
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var ran atomic.Int64
	_, err := RunParallel(cells, 4, func(c int) (int, error) {
		ran.Add(1)
		if c == 3 || c == 6 {
			return 0, fmt.Errorf("cell %d failed", c)
		}
		return c, nil
	})
	if err == nil || err.Error() != "cell 3 failed" {
		t.Fatalf("err = %v, want first canonical failure (cell 3)", err)
	}
	if int(ran.Load()) != len(cells) {
		t.Fatalf("ran %d cells, want all %d", ran.Load(), len(cells))
	}
}

// TestRunParallelEmpty checks the degenerate inputs.
func TestRunParallelEmpty(t *testing.T) {
	out, err := RunParallel(nil, 4, func(int) (int, error) {
		return 0, errors.New("must not run")
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v, want empty and nil", out, err)
	}
}

// TestChaosSweepParallelMatchesSerial pins the headline determinism
// guarantee of the parallel runner: the full chaos battery produces
// bit-identical results — packet trace hashes included — at workers=1
// (the serial path, no goroutines) and workers=4.
func TestChaosSweepParallelMatchesSerial(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seeds = []uint64{1}

	cfg.Workers = 1
	serial, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != len(parallel.Results) {
		t.Fatalf("cell count differs: %d vs %d", len(serial.Results), len(parallel.Results))
	}
	for i, a := range serial.Results {
		b := parallel.Results[i]
		if a.Scenario != b.Scenario || a.Seed != b.Seed {
			t.Fatalf("cell %d: order differs: %s/%d vs %s/%d", i, a.Scenario, a.Seed, b.Scenario, b.Seed)
		}
		if a.TraceHash != b.TraceHash {
			t.Errorf("%s/seed%d: trace hash differs serial %#x vs parallel %#x",
				a.Scenario, a.Seed, a.TraceHash, b.TraceHash)
		}
		if a.Survived != b.Survived || a.Completed != b.Completed || a.Aborted != b.Aborted ||
			a.ClientRetransmits != b.ClientRetransmits ||
			len(a.Violations) != len(b.Violations) ||
			a.PendingAfterDrain != b.PendingAfterDrain {
			t.Errorf("%s/seed%d: outcome differs serial %+v vs parallel %+v",
				a.Scenario, a.Seed, a, b)
		}
	}
}

// TestFailoverSweepParallelMatchesSerial pins the same guarantee for
// the failover battery.
func TestFailoverSweepParallelMatchesSerial(t *testing.T) {
	scenarios := DefaultFailoverScenarios()
	seeds := []uint64{1}
	serial, err := RunFailoverSweep(scenarios, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunFailoverSweep(scenarios, seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != len(parallel.Results) {
		t.Fatalf("cell count differs: %d vs %d", len(serial.Results), len(parallel.Results))
	}
	for i, a := range serial.Results {
		b := parallel.Results[i]
		if a.Scenario != b.Scenario || a.Seed != b.Seed {
			t.Fatalf("cell %d: order differs", i)
		}
		if a.TraceHash != b.TraceHash {
			t.Errorf("%s/seed%d: trace hash differs serial %#x vs parallel %#x",
				a.Scenario, a.Seed, a.TraceHash, b.TraceHash)
		}
		if a.Activations != b.Activations || a.OwnerNode != b.OwnerNode ||
			a.RepliesTotal != b.RepliesTotal || len(a.Violations) != len(b.Violations) {
			t.Errorf("%s/seed%d: outcome differs serial %+v vs parallel %+v",
				a.Scenario, a.Seed, a, b)
		}
	}
}

// TestFreezeSweepParallelMatchesSerial pins the guarantee for the Fig
// 5b/5c grid (a smaller-than-default grid keeps the test quick).
func TestFreezeSweepParallelMatchesSerial(t *testing.T) {
	conns := []int{16, 32}
	serial, err := RunFreezeSweep(conns, SweepStrategies, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunFreezeSweep(conns, SweepStrategies, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("point count differs: %d vs %d", len(serial), len(parallel))
	}
	for i, a := range serial {
		b := parallel[i]
		if a.Conns != b.Conns || a.Strategy != b.Strategy {
			t.Fatalf("point %d: order differs: %d/%v vs %d/%v", i, a.Conns, a.Strategy, b.Conns, b.Strategy)
		}
		if a.WorstFreeze != b.WorstFreeze || a.WorstSockBytes != b.WorstSockBytes ||
			a.ClientRetransmits != b.ClientRetransmits {
			t.Errorf("point %d (%v/%d conns): measurements differ serial (%v, %d, %d) vs parallel (%v, %d, %d)",
				i, a.Strategy, a.Conns,
				a.WorstFreeze, a.WorstSockBytes, a.ClientRetransmits,
				b.WorstFreeze, b.WorstSockBytes, b.ClientRetransmits)
		}
	}
}
