package eval

import (
	"fmt"
	"sort"
	"strings"

	"dvemig/internal/faults"
	"dvemig/internal/flight"
	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simprof"
	"dvemig/internal/simtime"
)

// ChaosEnv is the environment a scenario's Arm hook gets to sabotage:
// a three-node cluster (source, destination, DB) with migrators on the
// first two nodes, external clients streaming against a zone process on
// the source, and a fault injector seeded for the run.
type ChaosEnv struct {
	Sched     *simtime.Scheduler
	Cluster   *proc.Cluster
	Inj       *faults.Injector
	Source    *proc.Node
	Dest      *proc.Node
	DB        *proc.Node
	SrcMig    *migration.Migrator
	DstMig    *migration.Migrator
	ClientNIC *netsim.NIC // the external players' access link
	// MigrateAt is when the harness will initiate the migration.
	MigrateAt simtime.Time
}

// ChaosScenario is one named fault script. Arm runs after the healthy
// environment is built (connections established) and before the
// migration is initiated.
type ChaosScenario struct {
	Name string
	Arm  func(env *ChaosEnv)
}

// ChaosConfig parameterizes a sweep.
type ChaosConfig struct {
	Scenarios []ChaosScenario
	Seeds     []uint64
	// Clients is the number of external TCP connections (default 8).
	Clients int
	MigCfg  migration.Config
	// Workers bounds the sweep's parallelism: (scenario, seed) cells fan
	// out over up to Workers goroutines (<= 0 selects GOMAXPROCS, 1 is
	// the serial path). The report is bit-identical at every worker
	// count; see RunParallel.
	Workers int
	// Observe attaches a per-cell observability plane (spans + metrics)
	// to every run; each ChaosResult then carries its Obs capture. The
	// plane records only virtual time and never schedules events, so
	// trace hashes are unchanged and the captures are bit-identical at
	// any worker count.
	Observe bool
	// FlightDepth, when positive, attaches a per-cell flight recorder
	// (last FlightDepth events per scheduler/node/stack/NIC track) and,
	// when a cell's invariant audit fails, captures the retained window
	// into ChaosResult.FlightDump for post-mortem.
	FlightDepth int
	// Prof, when non-nil, attaches the wall-clock self-profiling plane:
	// per-cell event-loop attribution, per-phase migration skew, and the
	// sweep's worker-occupancy record. It only reads the host clock —
	// every sim artifact stays byte-identical with or without it.
	Prof *simprof.Profiler
}

// DefaultChaosConfig covers the ISSUE's scenario list: loss burst,
// duplication, reordering, delay jitter, lossy in-cluster links, a
// partition during freeze, and a destination crash during freeze.
func DefaultChaosConfig() ChaosConfig {
	cfg := migration.DefaultConfig()
	// Resolve aborts well inside the run window.
	cfg.Deadline = 4 * 1e9
	cfg.ConnTimeout = 1 * 1e9
	cfg.ConnRetries = 2
	return ChaosConfig{
		Scenarios: DefaultChaosScenarios(),
		Seeds:     []uint64{1, 2, 3},
		Clients:   8,
		MigCfg:    cfg,
	}
}

// DefaultChaosScenarios is the standard scenario battery.
func DefaultChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{Name: "healthy", Arm: func(*ChaosEnv) {}},
		{Name: "loss-burst", Arm: func(e *ChaosEnv) {
			// 30% loss on the public path for 2.5s spanning the
			// migration window, both directions of the access link.
			w := faults.Window{From: e.MigrateAt - 500*1e6, To: e.MigrateAt + 2000*1e6}
			e.Inj.Attach(e.ClientNIC, &faults.Program{Bursts: []faults.Burst{{Window: w, Rate: 0.3}}})
			e.Inj.Attach(e.Source.PublicNIC, &faults.Program{Bursts: []faults.Burst{{Window: w, Rate: 0.3}}})
			e.Inj.Attach(e.Dest.PublicNIC, &faults.Program{Bursts: []faults.Burst{{Window: w, Rate: 0.3}}})
		}},
		{Name: "dup", Arm: func(e *ChaosEnv) {
			e.Inj.Attach(e.ClientNIC, &faults.Program{DupRate: 0.05})
			e.Inj.Attach(e.Source.PublicNIC, &faults.Program{DupRate: 0.05})
			e.Inj.Attach(e.Dest.PublicNIC, &faults.Program{DupRate: 0.05})
		}},
		{Name: "reorder", Arm: func(e *ChaosEnv) {
			e.Inj.Attach(e.ClientNIC, &faults.Program{ReorderRate: 0.2, ReorderDelay: 3 * 1e6})
			e.Inj.Attach(e.Source.PublicNIC, &faults.Program{ReorderRate: 0.2, ReorderDelay: 3 * 1e6})
			e.Inj.Attach(e.Dest.PublicNIC, &faults.Program{ReorderRate: 0.2, ReorderDelay: 3 * 1e6})
		}},
		{Name: "jitter", Arm: func(e *ChaosEnv) {
			e.Inj.Attach(e.ClientNIC, &faults.Program{JitterMax: 2 * 1e6})
			e.Inj.Attach(e.Source.PublicNIC, &faults.Program{JitterMax: 2 * 1e6})
		}},
		{Name: "lossy-cluster", Arm: func(e *ChaosEnv) {
			// 5% random loss on the in-cluster links the migd protocol,
			// the DB session and the translation daemons run over.
			e.Inj.Attach(e.Source.LocalNIC, &faults.Program{BaseLoss: 0.05})
			e.Inj.Attach(e.Dest.LocalNIC, &faults.Program{BaseLoss: 0.05})
		}},
		{Name: "partition-freeze", Arm: func(e *ChaosEnv) {
			// When the source enters the freeze phase, the destination's
			// in-cluster link goes dark for 250ms: the freeze transfer
			// stalls mid-flight and must recover by retransmission.
			prev := e.SrcMig.OnPhase
			e.SrcMig.OnPhase = func(ev migration.PhaseEvent) {
				if prev != nil {
					prev(ev)
				}
				if ev.Phase == migration.PhaseFreeze {
					e.Inj.DownFor(e.Dest.LocalNIC, ev.Time, ev.Time+250*1e6)
				}
			}
		}},
		{Name: "crash-freeze", Arm: func(e *ChaosEnv) {
			faults.CrashAtPhase(e.Cluster, e.SrcMig, e.Dest, migration.PhaseFreeze, 0)
		}},
	}
}

// ChaosResult is the outcome of one (scenario, seed) cell.
type ChaosResult struct {
	Scenario string
	Seed     uint64
	// Survived: the process is running (on either node) at the end.
	Survived bool
	// Completed/Aborted report the migration outcome; AbortReason the
	// error if aborted.
	Completed   bool
	Aborted     bool
	AbortReason string
	// Violations lists byte-stream invariant breaches (empty = the
	// paper's no-loss/no-dup/no-reorder claim held under this fault).
	Violations []string
	// ClientRetransmits sums TCP retransmissions over all clients (a
	// liveness cost indicator, not a violation).
	ClientRetransmits uint64
	// TraceHash is an FNV-1a hash over every packet event on the
	// clients' access link; equal hashes mean bit-identical runs.
	TraceHash uint64
	// PendingAfterDrain is the scheduler's pending-event count after the
	// harness stops every periodic activity and runs the simulation to
	// quiescence. Nonzero means a leaked timer — an orphaned retransmit
	// loop or an unstopped ticker still holding the queue open.
	PendingAfterDrain int
	// Metrics is the migration's metric record, if it got far enough.
	Metrics *migration.Metrics
	// Obs is the cell's observability capture (nil unless
	// ChaosConfig.Observe).
	Obs *obs.Capture
	// FlightDump is the flight recorder's retained window, captured only
	// when the cell violated an invariant (and FlightDepth was set).
	FlightDump string
}

// ChaosReport aggregates a sweep.
type ChaosReport struct {
	Results []*ChaosResult
}

// Captures lists the cells' observability captures in result (scenario-
// major, seed-minor) order, skipping unobserved cells. Feeding them to
// obs.WriteChromeTrace in this canonical order keeps exported artifacts
// bit-identical at any sweep worker count.
func (r *ChaosReport) Captures() []*obs.Capture {
	var out []*obs.Capture
	for _, res := range r.Results {
		if res.Obs != nil {
			out = append(out, res.Obs)
		}
	}
	return out
}

// MergedSnapshot sums every observed cell's metric snapshot in
// canonical order (nil when the sweep ran unobserved). All cells share
// one histogram configuration, so the bounds-mismatch error cannot
// fire; it is surfaced anyway rather than swallowed.
func (r *ChaosReport) MergedSnapshot() (*obs.Snapshot, error) {
	caps := r.Captures()
	if len(caps) == 0 {
		return nil, nil
	}
	snaps := make([]*obs.Snapshot, len(caps))
	for i, c := range caps {
		snaps[i] = c.Snap
	}
	return obs.MergeSnapshots(snaps...)
}

// Counts returns (survived, completed, aborted, violated) cell counts.
func (r *ChaosReport) Counts() (survived, completed, aborted, violated int) {
	for _, res := range r.Results {
		if res.Survived {
			survived++
		}
		if res.Completed {
			completed++
		}
		if res.Aborted {
			aborted++
		}
		if len(res.Violations) > 0 {
			violated++
		}
	}
	return
}

// Table renders the sweep for console output.
func (r *ChaosReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos sweep: survival / migration outcome / invariant violations per scenario\n")
	fmt.Fprintf(&b, "%-18s %6s %9s %9s %8s %11s %18s\n",
		"scenario", "seed", "survived", "migrated", "aborted", "violations", "trace-hash")
	for _, res := range r.Results {
		out := "-"
		if res.Completed {
			out = "yes"
		}
		ab := "-"
		if res.Aborted {
			ab = "yes"
		}
		fmt.Fprintf(&b, "%-18s %6d %9v %9s %8s %11d %#18x\n",
			res.Scenario, res.Seed, res.Survived, out, ab, len(res.Violations), res.TraceHash)
	}
	s, c, a, v := r.Counts()
	fmt.Fprintf(&b, "total: %d cells, %d survived, %d migrated, %d aborted, %d with violations\n",
		len(r.Results), s, c, a, v)
	return b.String()
}

// RunChaosSweep runs every scenario at every seed and reports
// survival/abort/invariant-violation counts per cell. Cells run on up
// to cfg.Workers goroutines; the report is identical at any worker
// count (each cell owns a private scheduler and cluster, and results
// merge in scenario-major, seed-minor order).
func RunChaosSweep(cfg ChaosConfig) (*ChaosReport, error) {
	type cell struct {
		sc   ChaosScenario
		seed uint64
	}
	cells := make([]cell, 0, len(cfg.Scenarios)*len(cfg.Seeds))
	for _, sc := range cfg.Scenarios {
		for _, seed := range cfg.Seeds {
			cells = append(cells, cell{sc: sc, seed: seed})
		}
	}
	results, err := RunParallelProf(cells, cfg.Workers, cfg.Prof.Sweep("chaos-sweep", cfg.Workers), func(c cell) (*ChaosResult, error) {
		res, err := RunChaosScenario(cfg, c.sc, c.seed)
		if err != nil {
			return nil, fmt.Errorf("chaos %s seed %d: %w", c.sc.Name, c.seed, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return &ChaosReport{Results: results}, nil
}

// fnvSniffer folds every packet event on a link into an FNV-1a hash.
type fnvSniffer struct{ h uint64 }

func newFnvSniffer() *fnvSniffer { return &fnvSniffer{h: 14695981039346656037} }

func (s *fnvSniffer) word(v uint64) {
	for i := 0; i < 8; i++ {
		s.h = (s.h ^ (v & 0xff)) * 1099511628211
		v >>= 8
	}
}

func (s *fnvSniffer) Capture(at simtime.Time, dir string, p *netsim.Packet) {
	s.word(uint64(at))
	if dir == "tx" {
		s.word(1)
	} else {
		s.word(2)
	}
	s.word(uint64(p.SrcIP)<<32 | uint64(p.DstIP))
	s.word(uint64(p.SrcPort)<<48 | uint64(p.DstPort)<<32 | uint64(p.Flags)<<16 | uint64(p.Proto))
	s.word(uint64(p.Seq)<<32 | uint64(p.Ack))
	s.word(uint64(len(p.Payload)))
}

// RunChaosScenario runs one (scenario, seed) cell: a zone process with
// external clients and a DB session, a migration under the scenario's
// faults, and an end-to-end byte-stream audit afterwards.
func RunChaosScenario(cfg ChaosConfig, sc ChaosScenario, seed uint64) (*ChaosResult, error) {
	nClients := cfg.Clients
	if nClients <= 0 {
		nClients = 8
	}
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, 3)
	src, dst, dbNode := cluster.Nodes[0], cluster.Nodes[1], cluster.Nodes[2]
	srcMig, err := migration.NewMigrator(src, cfg.MigCfg)
	if err != nil {
		return nil, err
	}
	dstMig, err := migration.NewMigrator(dst, cfg.MigCfg)
	if err != nil {
		return nil, err
	}
	var o *obs.Obs
	if cfg.Observe {
		o = obs.New(sched)
		srcMig.SetObs(o)
		dstMig.SetObs(o)
	}
	if cfg.Prof != nil {
		label := fmt.Sprintf("chaos/%s/seed%d", sc.Name, seed)
		sched.Prof = cfg.Prof.Loop(label)
		skew := cfg.Prof.Skew(label)
		srcMig.Prof = skew
		dstMig.Prof = skew
	}
	var fset *flight.Set
	if cfg.FlightDepth > 0 {
		fset = flight.NewSet(cfg.FlightDepth)
		sched.FR = fset.Track("sched")
		for _, n := range cluster.Nodes {
			n.AttachFlight(fset)
		}
	}
	if _, err := startTransdOn(dbNode); err != nil {
		return nil, err
	}

	// DB listener: accepts the zone's session and swallows pings.
	dbl := netstack.NewTCPSocket(dbNode.Stack)
	if err := dbl.Listen(dbNode.LocalIP, 3306); err != nil {
		return nil, err
	}
	var dbPeer *netstack.TCPSocket
	dbl.OnAccept = func(ch *netstack.TCPSocket) {
		dbPeer = ch
		ch.OnReadable = func() { ch.Recv() }
	}

	// The zone process and its client listener.
	p := src.Spawn("zone_serv", 2)
	heap := p.AS.Mmap(128*proc.PageSize, "rw-")
	lst := netstack.NewTCPSocket(src.Stack)
	if err := lst.Listen(cluster.ClusterIP, 7777); err != nil {
		return nil, err
	}
	var accepted []*netstack.TCPSocket
	lst.OnAccept = func(ch *netstack.TCPSocket) { accepted = append(accepted, ch) }
	p.FDs.Install(&proc.TCPFile{Sock: lst})

	host := cluster.NewExternalHost("players")
	clientNIC := cluster.LastExternalNIC()
	sniff := newFnvSniffer()
	clientNIC.AttachSniffer(sniff)

	recv := make(map[uint16][]byte) // client local port -> bytes observed
	clients := make([]*netstack.TCPSocket, 0, nClients)
	for i := 0; i < nClients; i++ {
		cli := netstack.NewTCPSocket(host)
		if err := cli.Connect(cluster.ClusterIP, 7777); err != nil {
			return nil, err
		}
		cli.OnReadable = func() {
			if data := cli.Recv(); len(data) > 0 {
				recv[cli.LocalPort] = append(recv[cli.LocalPort], data...)
			}
		}
		clients = append(clients, cli)
	}
	dbSock := netstack.NewTCPSocket(src.Stack)
	if err := dbSock.Connect(dbNode.LocalIP, 3306); err != nil {
		return nil, err
	}
	sched.RunFor(2 * 1e9)
	if len(accepted) != nClients || dbPeer == nil {
		return nil, fmt.Errorf("chaos setup: accepted=%d db=%v", len(accepted), dbPeer != nil)
	}
	for _, sk := range accepted {
		p.FDs.Install(&proc.TCPFile{Sock: sk})
	}
	p.FDs.Install(&proc.TCPFile{Sock: dbSock})
	sched.RunFor(200 * 1e6)

	// The app: every tick, drain each client connection and push the
	// next chunk of its deterministic per-connection stream. The stream
	// ledger lives in the closure and therefore travels with the
	// process; the audit below compares it against what clients saw.
	sent := make(map[uint16][]byte) // server's view, by client port
	sending := true
	tick := 0
	dbAddr := dbNode.LocalIP
	p.Tick = func(self *proc.Process) {
		tick++
		tcp, _ := self.Sockets()
		for _, sk := range tcp {
			if sk.State != netstack.TCPEstablished {
				continue
			}
			if sk.RemoteIP == dbAddr {
				sk.Recv()
				_ = sk.Send([]byte("ping;"))
				continue
			}
			sk.Recv() // client input is drained, not audited here
			if !sending {
				continue
			}
			port := sk.RemotePort
			msg := []byte(fmt.Sprintf("s%d.%d|update-payload;", port, len(sent[port])))
			sent[port] = append(sent[port], msg...)
			_ = sk.Send(msg)
		}
		_ = self.AS.Touch(heap.Start + uint64(tick%128)*proc.PageSize)
	}
	p.CPUDemand = 0.4
	src.StartLoop(p, 50*1e6)

	// Clients send input events to keep both directions busy.
	cliTicker := simtime.NewTicker(sched, 40*1e6, "chaos.clients", func() {
		for _, cli := range clients {
			_ = cli.Send([]byte("ev;"))
		}
	})
	cliTicker.Start()

	inj := faults.NewInjector(sched, seed)
	inj.Obs = o
	env := &ChaosEnv{
		Sched: sched, Cluster: cluster, Inj: inj,
		Source: src, Dest: dst, DB: dbNode,
		SrcMig: srcMig, DstMig: dstMig,
		ClientNIC: clientNIC, MigrateAt: sched.Now() + 800*1e6,
	}
	if sc.Arm != nil {
		sc.Arm(env)
	}

	res := &ChaosResult{Scenario: sc.Name, Seed: seed}
	sched.At(env.MigrateAt, "chaos.migrate", func() {
		srcMig.Migrate(p, dst.LocalIP, func(m *migration.Metrics, err error) {
			res.Metrics = m
			if err != nil {
				res.Aborted = true
				res.AbortReason = err.Error()
			} else {
				res.Completed = true
			}
		})
	})

	// Run well past every fault window, stop the stream, then drain.
	sched.RunFor(10 * 1e9)
	sending = false
	sched.RunFor(3 * 1e9)
	cliTicker.Stop()

	// Survival: the process runs on exactly one node.
	var home *proc.Node
	for _, n := range []*proc.Node{src, dst} {
		for _, pr := range n.Processes() {
			if pr.Name == "zone_serv" && pr.State == proc.ProcRunning {
				if home != nil {
					res.Violations = append(res.Violations, "process running on both nodes")
				}
				home = n
			}
		}
	}
	res.Survived = home != nil
	if home == nil {
		res.Violations = append(res.Violations, "process not running anywhere")
	} else if res.Completed && home != dst {
		res.Violations = append(res.Violations, "migration reported success but process not on destination")
	} else if res.Aborted && home != src {
		res.Violations = append(res.Violations, "migration aborted but process not back on source")
	}

	// Byte-stream audit: what each client observed must be exactly what
	// the server's ledger says was sent to it — same bytes, same order,
	// nothing duplicated, nothing missing.
	ports := make([]int, 0, len(clients))
	for _, cli := range clients {
		ports = append(ports, int(cli.LocalPort))
		res.ClientRetransmits += cli.Retransmits
	}
	sort.Ints(ports)
	for _, pt := range ports {
		port := uint16(pt)
		got, want := recv[port], sent[port]
		if string(got) != string(want) {
			detail := ""
			if home != nil {
				for _, pr := range home.Processes() {
					if pr.Name != "zone_serv" {
						continue
					}
					tcp, _ := pr.Sockets()
					for _, sk := range tcp {
						if sk.RemotePort == port {
							detail = fmt.Sprintf(" (server sock state=%v unhashed=%v sndbuf=%d wq=%d una=%d nxt=%d cwnd=%d swnd=%d retrans=%d fast=%d rto=%dms)",
								sk.State, sk.Unhashed(), sk.SendBufLen(), len(sk.WriteQueue()),
								sk.SndUna, sk.SndNxt, sk.Cwnd, sk.SndWnd, sk.Retransmits, sk.FastRetransmits, sk.RTOms)
						}
					}
					for _, cli := range clients {
						if cli.LocalPort == port {
							detail += fmt.Sprintf(" (client state=%v rcvnxt=%d ooo=%d retrans=%d)",
								cli.State, cli.RcvNxt, len(cli.OOOQueue()), cli.Retransmits)
						}
					}
				}
			}
			res.Violations = append(res.Violations,
				fmt.Sprintf("client :%d stream mismatch: got %d bytes, want %d%s", port, len(got), len(want), detail))
		}
		if len(want) == 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("client :%d starved: server never sent", port))
		}
	}
	res.TraceHash = sniff.h

	// Drain to quiescence: with the stream stopped, disarm the surviving
	// process's loop and close the client sockets, then hop from event to
	// event until the queue empties. Every timer in the system is now
	// either canceled eagerly (tickers, migration leases, translation
	// retries) or self-limiting (TCP retransmission gives up after
	// MaxConsecRetrans — with full exponential backoff to MaxRTO that
	// takes tens of simulated minutes, hence the generous horizon), so a
	// healthy run always reaches Pending()==0 — the exact-count invariant
	// the scheduler overhaul makes checkable.
	if home != nil {
		for _, pr := range home.Processes() {
			if pr.Name == "zone_serv" {
				home.StopLoop(pr)
			}
		}
	}
	for _, cli := range clients {
		cli.Close()
	}
	limit := sched.Now() + 3600*1e9
	for sched.Pending() > 0 {
		next, _ := sched.NextEventTime()
		if next > limit {
			break
		}
		sched.RunUntil(next)
	}
	res.PendingAfterDrain = sched.Pending()
	if o != nil {
		obs.HarvestCluster(o.Metrics, cluster)
		res.Obs = o.Capture(fmt.Sprintf("%s/seed%d", sc.Name, seed))
	}
	if fset != nil && len(res.Violations) > 0 {
		var b strings.Builder
		fset.Dump(&b)
		res.FlightDump = b.String()
	}
	return res, nil
}
