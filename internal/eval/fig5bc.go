// Package eval contains the experiment harnesses that regenerate the
// paper's figures: the Fig 5b/5c freeze-time and socket-bytes sweeps over
// connection counts and strategies, wrappers for the Fig 5d/5e/5f DVE
// load-balancing runs (package dve) and the Fig 4 OpenArena run (package
// openarena), plus the ablation experiments DESIGN.md calls out.
package eval

import (
	"fmt"

	"dvemig/internal/dve"
	"dvemig/internal/migration"
	"dvemig/internal/netstack"
	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simprof"
	"dvemig/internal/simtime"
	"dvemig/internal/sockmig"
)

// SweepConns is the connection-count axis of Fig 5b/5c.
var SweepConns = []int{16, 32, 64, 128, 256, 512, 1024}

// SweepStrategies is the strategy axis.
var SweepStrategies = []sockmig.Strategy{
	sockmig.Iterative, sockmig.Collective, sockmig.IncrementalCollective,
}

// FreezeConfig parameterizes one Fig 5b/5c measurement.
type FreezeConfig struct {
	Conns    int
	Strategy sockmig.Strategy
	// UpdateHz is the per-client server update rate (20/s, §VI-C);
	// Batches spreads one round of updates across the frame the way a
	// real server's send loop does in time.
	UpdateHz int
	Batches  int
	// MsgBytes is the update payload (256 B, the MMPOG average §VI-C).
	MsgBytes int
	// MemPages is the zone server working set.
	MemPages uint64
	// Repeats: the experiment reports the worst case over this many runs
	// with different traffic phases.
	Repeats int
	MigCfg  migration.Config
	// Workers bounds how many repeats run concurrently (<= 0 selects
	// GOMAXPROCS, 1 is the serial path). Every repeat owns a private
	// scheduler and cluster, so the point is bit-identical at any worker
	// count; see RunParallel.
	Workers int
	// Observe attaches a per-repeat observability plane; the point then
	// carries one capture per repeat plus a merged metric snapshot.
	Observe bool
	// Seed deterministically shifts every repeat's warm-up phase (and so
	// the traffic alignment the migration lands on). Two runs with the
	// same seed produce byte-identical artifacts at any worker count;
	// two seeds produce different ones — the contract obsdiff and the CI
	// determinism job lean on. Zero is the historical default alignment.
	Seed uint64
	// Prof, when non-nil, attaches the wall-clock self-profiling plane
	// to every repeat (event-loop attribution + migration phase skew).
	// Read-only with respect to the simulation: measured freeze times
	// and artifacts are identical with or without it.
	Prof *simprof.Profiler
}

// DefaultFreezeConfig mirrors the paper's zone-server setup.
func DefaultFreezeConfig(strategy sockmig.Strategy, conns int) FreezeConfig {
	cfg := migration.DefaultConfig()
	cfg.Strategy = strategy
	return FreezeConfig{
		Conns:    conns,
		Strategy: strategy,
		UpdateHz: 20,
		Batches:  8,
		MsgBytes: 256,
		MemPages: 256,
		Repeats:  3,
		MigCfg:   cfg,
	}
}

// FreezePoint is one measured point of Fig 5b/5c.
type FreezePoint struct {
	Conns    int
	Strategy sockmig.Strategy
	// WorstFreeze is the worst-case process freeze time (Fig 5b);
	// WorstSockBytes the worst-case socket data transferred during the
	// freeze phase (Fig 5c). ClientRetransmits sums client-side TCP
	// retransmissions over all runs — zero when capture is on, the
	// measure of the capture-off ablation.
	WorstFreeze       simtime.Duration
	WorstSockBytes    uint64
	ClientRetransmits uint64
	Runs              []*migration.Metrics
	// WorstPhaseGap is the longest interval between consecutive phase
	// events over all runs (PhaseEvent.Time-Since): the single stall
	// that dominates the migration, whichever phase it hides in.
	WorstPhaseGap simtime.Duration
	// Caps holds one observability capture per repeat (in repeat order)
	// and Snap their merged metric snapshot; both nil unless
	// FreezeConfig.Observe.
	Caps []*obs.Capture
	Snap *obs.Snapshot
}

// RunFreezePoint measures one (strategy, conns) cell. The repeats run
// on up to fc.Workers goroutines and merge in repeat order, so the
// point is identical at any worker count.
func RunFreezePoint(fc FreezeConfig) (*FreezePoint, error) {
	pt := &FreezePoint{Conns: fc.Conns, Strategy: fc.Strategy}
	repeats := fc.Repeats
	if repeats < 1 {
		repeats = 1
	}
	type once struct {
		m       *migration.Metrics
		retrans uint64
		gap     simtime.Duration
		cap     *obs.Capture
	}
	reps := make([]int, repeats)
	for i := range reps {
		reps[i] = i
	}
	runs, err := RunParallel(reps, fc.Workers, func(rep int) (once, error) {
		m, retrans, gap, cap, err := runFreezeOnce(fc, rep)
		return once{m: m, retrans: retrans, gap: gap, cap: cap}, err
	})
	if err != nil {
		return nil, err
	}
	var snaps []*obs.Snapshot
	for _, r := range runs {
		pt.Runs = append(pt.Runs, r.m)
		pt.ClientRetransmits += r.retrans
		if r.m.FreezeTime > pt.WorstFreeze {
			pt.WorstFreeze = r.m.FreezeTime
		}
		if r.m.FreezeSockBytes > pt.WorstSockBytes {
			pt.WorstSockBytes = r.m.FreezeSockBytes
		}
		if r.gap > pt.WorstPhaseGap {
			pt.WorstPhaseGap = r.gap
		}
		if r.cap != nil {
			pt.Caps = append(pt.Caps, r.cap)
			snaps = append(snaps, r.cap.Snap)
		}
	}
	if len(snaps) > 0 {
		if pt.Snap, err = obs.MergeSnapshots(snaps...); err != nil {
			return nil, err
		}
	}
	return pt, nil
}

// RunFreezeSweep measures the full Fig 5b/5c grid — every (conns,
// strategy) point at the given repeat count — fanning the points over
// up to workers goroutines. Points come back in conns-major,
// strategy-minor order (the order the tables expect); each point's
// repeats run serially inside its cell so parallelism never nests.
func RunFreezeSweep(conns []int, strategies []sockmig.Strategy, repeats, workers int) ([]*FreezePoint, error) {
	return RunFreezeSweepSeeded(conns, strategies, repeats, workers, 0, false)
}

// RunFreezeSweepObserved is RunFreezeSweep with the observability plane
// enabled on every cell: each point comes back with per-run Captures
// and a merged Snap, which the phase table and the trace exporters
// consume. The sweep's measured numbers are identical to the unobserved
// sweep — the plane never schedules events.
func RunFreezeSweepObserved(conns []int, strategies []sockmig.Strategy, repeats, workers int) ([]*FreezePoint, error) {
	return RunFreezeSweepSeeded(conns, strategies, repeats, workers, 0, true)
}

// RunFreezeSweepSeeded is the fully parameterized sweep: seed shifts
// every cell's traffic alignment (FreezeConfig.Seed) and observe
// attaches the observability plane. Exports of two equal-seed runs are
// byte-identical at any worker count; unequal seeds diverge — the CI
// obs job asserts both directions with obsdiff.
func RunFreezeSweepSeeded(conns []int, strategies []sockmig.Strategy, repeats, workers int, seed uint64, observe bool) ([]*FreezePoint, error) {
	return RunFreezeSweepMig(conns, strategies, repeats, workers, seed, observe, nil)
}

// RunFreezeSweepMig additionally pins the memory-movement strategy
// (migration.Precopy/Postcopy/Hybrid) for every cell — the second,
// orthogonal axis the strategy race compares. nil keeps the default
// (pre-copy), making this a strict generalization of the seeded sweep.
func RunFreezeSweepMig(conns []int, strategies []sockmig.Strategy, repeats, workers int, seed uint64, observe bool, mig migration.Strategy) ([]*FreezePoint, error) {
	return RunFreezeSweepProf(conns, strategies, repeats, workers, seed, observe, mig, nil)
}

// RunFreezeSweepProf is the fully instrumented sweep: prof additionally
// attaches the wall-clock self-profiling plane to every cell and
// records the sweep's worker occupancy. The measured figures are
// identical with a nil prof — the plane never touches virtual time.
func RunFreezeSweepProf(conns []int, strategies []sockmig.Strategy, repeats, workers int, seed uint64, observe bool, mig migration.Strategy, prof *simprof.Profiler) ([]*FreezePoint, error) {
	cells := make([]FreezeConfig, 0, len(conns)*len(strategies))
	for _, n := range conns {
		for _, s := range strategies {
			fc := DefaultFreezeConfig(s, n)
			fc.Repeats = repeats
			fc.Workers = 1
			fc.Observe = observe
			fc.Seed = seed
			fc.MigCfg.Mig = mig
			fc.Prof = prof
			cells = append(cells, fc)
		}
	}
	return RunParallelProf(cells, workers, prof.Sweep("freeze-sweep", workers), RunFreezePoint)
}

func runFreezeOnce(fc FreezeConfig, rep int) (*migration.Metrics, uint64, simtime.Duration, *obs.Capture, error) {
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, 3) // source, destination, DB
	var o *obs.Obs
	if fc.Observe {
		o = obs.New(sched)
	}
	// Consumers get the per-phase delta handed to them on the event
	// (PhaseEvent.Since); the worst single stall is one comparison.
	// Only armed when observing, so the disabled benchmark path stays
	// allocation-free.
	var worstGap simtime.Duration
	var onPhase func(migration.PhaseEvent)
	if fc.Observe {
		onPhase = func(ev migration.PhaseEvent) {
			if d := ev.Time - ev.Since; d > worstGap {
				worstGap = d
			}
		}
	}
	var skew *simprof.SkewProf
	if fc.Prof != nil {
		label := fmt.Sprintf("freeze-c%d-%s-rep%d", fc.Conns, fc.Strategy, rep)
		sched.Prof = fc.Prof.Loop(label)
		skew = fc.Prof.Skew(label)
	}
	var migs []*migration.Migrator
	for _, n := range cluster.Nodes[:2] {
		m, err := migration.NewMigrator(n, fc.MigCfg)
		if err != nil {
			return nil, 0, 0, nil, err
		}
		if fc.Observe {
			m.SetObs(o)
			m.OnPhase = onPhase
		}
		m.Prof = skew
		migs = append(migs, m)
	}
	dbNode := cluster.Nodes[2]
	db, err := dve.StartDBServer(dbNode)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	_ = db
	if _, err := startTransdOn(dbNode); err != nil {
		return nil, 0, 0, nil, err
	}

	src := cluster.Nodes[0]
	p := src.Spawn("zone_serv", 2)
	heap := p.AS.Mmap(fc.MemPages*proc.PageSize, "rw-")
	for i := uint64(0); i < fc.MemPages; i += 4 {
		if err := p.AS.Write(heap.Start+i*proc.PageSize, []byte{byte(i)}); err != nil {
			return nil, 0, 0, nil, err
		}
	}

	// Game clients.
	lst := netstack.NewTCPSocket(src.Stack)
	if err := lst.Listen(cluster.ClusterIP, 7000); err != nil {
		return nil, 0, 0, nil, err
	}
	var serverSide []*netstack.TCPSocket
	lst.OnAccept = func(ch *netstack.TCPSocket) { serverSide = append(serverSide, ch) }
	host := cluster.NewExternalHost("players")
	clients := make([]*netstack.TCPSocket, 0, fc.Conns)
	for i := 0; i < fc.Conns; i++ {
		cli := netstack.NewTCPSocket(host)
		if err := cli.Connect(cluster.ClusterIP, 7000); err != nil {
			return nil, 0, 0, nil, err
		}
		cli.OnReadable = func() { cli.Recv() } // consume updates
		clients = append(clients, cli)
	}
	sched.RunFor(2e9)
	if len(serverSide) != fc.Conns {
		return nil, 0, 0, nil, fmt.Errorf("eval: only %d/%d connections established", len(serverSide), fc.Conns)
	}
	for _, sk := range serverSide {
		p.FDs.Install(&proc.TCPFile{Sock: sk})
	}
	// The local MySQL session (§VI-D: "Each server also maintains a local
	// MySQL session").
	dbSock := netstack.NewTCPSocket(src.Stack)
	if err := dbSock.Connect(dbNode.LocalIP, dve.DBPort); err != nil {
		return nil, 0, 0, nil, err
	}
	p.FDs.Install(&proc.TCPFile{Sock: dbSock})
	sched.RunFor(1e9)

	// Clients send input events at the update rate, their traffic spread
	// across the frame — this is what the capture mechanism must protect
	// during the freeze window.
	cliBatch := 0
	cliTicker := simtime.NewTicker(sched,
		simtime.Duration(1e9)/simtime.Duration(fc.UpdateHz*fc.Batches), "eval.clients", func() {
			cliBatch++
			nb := fc.Batches
			lo := (cliBatch % nb) * len(clients) / nb
			hi := ((cliBatch % nb) + 1) * len(clients) / nb
			for _, cli := range clients[lo:hi] {
				_ = cli.Send([]byte("ev"))
			}
		})
	cliTicker.Start()
	defer cliTicker.Stop()

	// Real-time loop: UpdateHz updates per client per second, the send
	// work spread over Batches sub-frames like a real server's send loop.
	msg := make([]byte, fc.MsgBytes)
	batch := 0
	update := make([]byte, 8)
	_ = update
	p.Tick = func(self *proc.Process) {
		batch++
		tcp, _ := self.Sockets()
		if len(tcp) == 0 {
			return
		}
		nb := fc.Batches
		lo := (batch % nb) * len(tcp) / nb
		hi := ((batch % nb) + 1) * len(tcp) / nb
		for _, sk := range tcp[lo:hi] {
			if sk.State == netstack.TCPEstablished {
				sk.Recv()
				_ = sk.Send(msg)
			}
		}
		_ = self.AS.Touch(heap.Start + uint64(batch%int(fc.MemPages))*proc.PageSize)
	}
	p.CPUDemand = 0.4
	period := simtime.Duration(1e9) / simtime.Duration(fc.UpdateHz*fc.Batches)
	src.StartLoop(p, period)

	// Warm up with a phase shift per repetition so the worst case over
	// repeats covers different traffic alignments; the seed shifts the
	// whole family so distinct seeds land on distinct alignments.
	warm := 500*1e6 + simtime.Duration(rep)*7e6 + simtime.Duration(fc.Seed%64)*3e6
	sched.RunFor(warm)

	var got *migration.Metrics
	var gotErr error
	migs[0].Migrate(p, cluster.Nodes[1].LocalIP, func(m *migration.Metrics, err error) {
		got, gotErr = m, err
	})
	sched.RunFor(30e9)
	if gotErr != nil {
		return nil, 0, 0, nil, gotErr
	}
	if got == nil {
		return nil, 0, 0, nil, fmt.Errorf("eval: migration did not complete")
	}
	var retrans uint64
	for _, cli := range clients {
		retrans += cli.Retransmits
	}
	var cap *obs.Capture
	if o != nil {
		obs.HarvestCluster(o.Metrics, cluster)
		cap = o.Capture(fmt.Sprintf("freeze-c%d-%s-rep%d", fc.Conns, fc.Strategy, rep))
	}
	return got, retrans, worstGap, cap, nil
}
