package eval

import (
	"bytes"
	"testing"

	"dvemig/internal/obs"
)

// smallStrategySweep keeps the parity matrix cheap: three strategies,
// two fault scenarios (one benign, one adversarial), two seeds.
func smallStrategySweep(workers int, observe bool) StrategySweepConfig {
	cfg := DefaultStrategySweepConfig()
	all := DefaultChaosScenarios()
	cfg.Chaos.Scenarios = []ChaosScenario{all[0], all[4]} // healthy, lossy-cluster
	cfg.Chaos.Seeds = []uint64{1, 2}
	cfg.Chaos.Workers = workers
	cfg.Chaos.Observe = observe
	return cfg
}

// TestStrategySweepInvariants: every strategy keeps the byte-stream
// invariant under the sampled scenarios, and the post-copy metric
// columns are populated exactly where they should be.
func TestStrategySweepInvariants(t *testing.T) {
	r, err := RunStrategySweep(smallStrategySweep(0, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 3*2*2 {
		t.Fatalf("%d cells, want 12", len(r.Results))
	}
	for _, res := range r.Results {
		if !res.Survived {
			t.Errorf("%s/%s/seed%d: process did not survive", res.Strategy, res.Scenario, res.Seed)
		}
		if len(res.Violations) > 0 {
			t.Errorf("%s/%s/seed%d: violations: %v", res.Strategy, res.Scenario, res.Seed, res.Violations)
		}
		if !res.Completed {
			t.Errorf("%s/%s/seed%d: migration did not complete", res.Strategy, res.Scenario, res.Seed)
			continue
		}
		m := res.Metrics
		if m.Mig != res.Strategy {
			t.Errorf("%s/%s/seed%d: Metrics.Mig = %q", res.Strategy, res.Scenario, res.Seed, m.Mig)
		}
		switch res.Strategy {
		case "precopy":
			if m.PagesShipped != 0 {
				t.Errorf("precopy shipped %d pull pages", m.PagesShipped)
			}
			if m.LastFillAt != m.ResumeAt {
				t.Errorf("precopy LastFillAt %v != ResumeAt %v", m.LastFillAt, m.ResumeAt)
			}
		case "postcopy", "hybrid":
			if m.PagesShipped == 0 {
				t.Errorf("%s shipped no pull pages", res.Strategy)
			}
			if m.PullDuplicates != 0 {
				t.Errorf("%s served %d duplicate pulls", res.Strategy, m.PullDuplicates)
			}
			if m.LastFillAt < m.ResumeAt {
				t.Errorf("%s LastFillAt %v before ResumeAt %v", res.Strategy, m.LastFillAt, m.ResumeAt)
			}
		}
		if m.DegradedWindow <= 0 {
			t.Errorf("%s/%s/seed%d: DegradedWindow = %v", res.Strategy, res.Scenario, res.Seed, m.DegradedWindow)
		}
		if res.PendingAfterDrain != 0 {
			t.Errorf("%s/%s/seed%d: %d leaked timers", res.Strategy, res.Scenario, res.Seed, res.PendingAfterDrain)
		}
	}
}

// TestStrategySweepParallelMatchesSerial is the determinism contract
// extended to the strategy race: the full report — per-cell trace
// hashes, rendered tables, and the observed trace/metrics artifacts —
// must be byte-identical whether the sweep ran on 1, 4 or 8 workers.
// CI runs this under -race, which also proves the cells share no
// mutable state.
func TestStrategySweepParallelMatchesSerial(t *testing.T) {
	render := func(workers int) (table, summary string, hashes []uint64, trace, metrics []byte) {
		r, err := RunStrategySweep(smallStrategySweep(workers, true))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, res := range r.Results {
			hashes = append(hashes, res.TraceHash)
		}
		var tb, mb bytes.Buffer
		caps := r.Captures()
		if len(caps) != len(r.Results) {
			t.Fatalf("workers=%d: %d captures for %d cells", workers, len(caps), len(r.Results))
		}
		if err := obs.WriteChromeTrace(&tb, caps...); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteMetricsText(&mb, caps...); err != nil {
			t.Fatal(err)
		}
		return r.Table(), r.Summary(), hashes, tb.Bytes(), mb.Bytes()
	}
	refTable, refSummary, refHashes, refTrace, refMetrics := render(1)
	if len(refTrace) == 0 || len(refMetrics) == 0 {
		t.Fatal("serial artifacts empty")
	}
	for _, w := range []int{4, 8} {
		gotTable, gotSummary, gotHashes, gotTrace, gotMetrics := render(w)
		if gotTable != refTable {
			t.Errorf("table differs at workers=%d:\n--- serial ---\n%s--- workers=%d ---\n%s",
				w, refTable, w, gotTable)
		}
		if gotSummary != refSummary {
			t.Errorf("summary differs at workers=%d", w)
		}
		for i := range refHashes {
			if gotHashes[i] != refHashes[i] {
				t.Errorf("trace hash %d differs at workers=%d: %#x vs %#x",
					i, w, refHashes[i], gotHashes[i])
			}
		}
		if !bytes.Equal(refTrace, gotTrace) {
			t.Errorf("trace artifact differs at workers=%d (%d vs %d bytes)", w, len(refTrace), len(gotTrace))
		}
		if !bytes.Equal(refMetrics, gotMetrics) {
			t.Errorf("metrics artifact differs at workers=%d (%d vs %d bytes)", w, len(refMetrics), len(gotMetrics))
		}
	}
}
