// Parallel sweep execution.
//
// Every sweep in this package is a grid of independent cells — a
// (scenario, seed) pair, a (strategy, conns, repeat) triple — and every
// cell builds its own private simtime.Scheduler and proc.Cluster.
// Nothing observable crosses cell boundaries: the only package-level
// mutable state touched by a simulation is the migration behavior
// registry, which is mutex-guarded and whose token values are opaque
// fixed-width map keys that never influence packet lengths, audits or
// trace hashes. Cells are therefore safe to run on worker goroutines,
// and — because results are merged back in canonical cell order — the
// parallel sweep is bit-identical to the serial one. The chaos and
// failover batteries pin that equivalence in a test.
package eval

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dvemig/internal/simprof"
)

// RunParallel runs fn over every cell on up to workers goroutines and
// returns the results in canonical cell order (results[i] corresponds
// to cells[i], regardless of which worker ran it or when it finished).
//
// workers <= 0 selects GOMAXPROCS; workers == 1 degenerates to a plain
// serial loop on the calling goroutine (no goroutines spawned), which
// keeps single-threaded runs easy to debug and profile.
//
// workers is clamped to GOMAXPROCS: a sweep cell is pure CPU (no
// blocking I/O a goroutine could overlap), so oversubscribing the
// scheduler buys nothing and costs context switches — on small
// machines the extra goroutines made the scaling curve flat to
// negative (workers=2 measurably *slower* than workers=1 on one CPU).
//
// All cells are run even if some fail; the returned error is the first
// failure in canonical cell order, so error reporting is as
// deterministic as the results themselves.
func RunParallel[C any, R any](cells []C, workers int, fn func(C) (R, error)) ([]R, error) {
	return RunParallelProf(cells, workers, nil, fn)
}

// RunParallelProf is RunParallel with a self-profiling collector: when
// sp is non-nil, every cell's wall time and memory deltas are recorded
// against the worker that ran it (worker 0 is the serial path / the
// calling goroutine), bracketed by the sweep's own wall window so the
// report can compute per-worker busy/idle occupancy. A nil sp is the
// plain runner — the collector only reads the host clock and MemStats,
// never the cells, so results are bit-identical either way.
func RunParallelProf[C any, R any](cells []C, workers int, sp *simprof.SweepProf, fn func(C) (R, error)) ([]R, error) {
	results := make([]R, len(cells))
	errs := make([]error, len(cells))
	if max := runtime.GOMAXPROCS(0); workers <= 0 || workers > max {
		workers = max
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	sp.Begin(len(cells), workers)
	if workers <= 1 {
		for i := range cells {
			sp.CellStart(i, 0)
			results[i], errs[i] = fn(cells[i])
			sp.CellEnd(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			w := w
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cells) {
						return
					}
					sp.CellStart(i, w)
					results[i], errs[i] = fn(cells[i])
					sp.CellEnd(i)
				}
			}()
		}
		wg.Wait()
	}
	sp.End()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
