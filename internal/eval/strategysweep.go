package eval

import (
	"fmt"
	"strings"

	"dvemig/internal/migration"
	"dvemig/internal/obs"
)

// StrategySweepConfig parameterizes the strategy race: every migration
// strategy runs the same chaos scenario battery at the same seeds, so
// the per-strategy freeze/downtime/degraded-window columns are directly
// comparable cell by cell.
type StrategySweepConfig struct {
	// Strategies lists the migration strategies to race (default: all
	// three, in migration.StrategyNames order).
	Strategies []string
	Chaos      ChaosConfig
}

// DefaultStrategySweepConfig races all three strategies over the
// default chaos battery at two seeds.
func DefaultStrategySweepConfig() StrategySweepConfig {
	chaos := DefaultChaosConfig()
	chaos.Seeds = []uint64{1, 2}
	return StrategySweepConfig{
		Strategies: migration.StrategyNames(),
		Chaos:      chaos,
	}
}

// StrategyResult is one (strategy, scenario, seed) cell.
type StrategyResult struct {
	Strategy string
	*ChaosResult
}

// StrategyReport aggregates the race, strategy-major, scenario-minor,
// seed-ordered — the canonical order every rendering walks, so the
// artifacts are bit-identical at any worker count.
type StrategyReport struct {
	Results []*StrategyResult
}

// Captures lists the observed cells' captures in canonical order.
func (r *StrategyReport) Captures() []*obs.Capture {
	var out []*obs.Capture
	for _, res := range r.Results {
		if res.Obs != nil {
			out = append(out, res.Obs)
		}
	}
	return out
}

// Counts returns (survived, completed, aborted, violated) cell counts.
func (r *StrategyReport) Counts() (survived, completed, aborted, violated int) {
	for _, res := range r.Results {
		if res.Survived {
			survived++
		}
		if res.Completed {
			completed++
		}
		if res.Aborted {
			aborted++
		}
		if len(res.Violations) > 0 {
			violated++
		}
	}
	return
}

// Table renders every cell with the three per-strategy latency columns:
// freeze time (process stopped on both nodes), total downtime (freeze
// plus post-resume demand-fault stalls), and the degraded window (from
// migration start until the last page fill — the span in which the
// process runs below full speed). For pre-copy the stall share is zero
// and the degraded window ends at resume, so the columns degenerate to
// the classic freeze-centric view.
func (r *StrategyReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy race: per-cell freeze / downtime / degraded window under chaos\n")
	fmt.Fprintf(&b, "%-9s %-18s %5s %8s %7s %10s %10s %10s %6s %18s\n",
		"strategy", "scenario", "seed", "outcome", "viol", "freeze-ms", "down-ms", "degr-ms", "pulls", "trace-hash")
	for _, res := range r.Results {
		outcome := "none"
		switch {
		case res.Completed:
			outcome = "migrated"
		case res.Aborted:
			outcome = "aborted"
		}
		freeze, down, degr, pulls := "-", "-", "-", "-"
		if m := res.Metrics; m != nil && res.Completed {
			freeze = fmt.Sprintf("%.2f", float64(m.FreezeTime)/1e6)
			down = fmt.Sprintf("%.2f", float64(m.FreezeTime+m.StallTime)/1e6)
			degr = fmt.Sprintf("%.2f", float64(m.DegradedWindow)/1e6)
			pulls = fmt.Sprintf("%d", m.PagesDemand+m.PagesPrefetched)
		}
		fmt.Fprintf(&b, "%-9s %-18s %5d %8s %7d %10s %10s %10s %6s %#18x\n",
			res.Strategy, res.Scenario, res.Seed, outcome, len(res.Violations),
			freeze, down, degr, pulls, res.TraceHash)
	}
	s, c, a, v := r.Counts()
	fmt.Fprintf(&b, "total: %d cells, %d survived, %d migrated, %d aborted, %d with violations\n",
		len(r.Results), s, c, a, v)
	return b.String()
}

// Summary renders the head-to-head comparison: per (scenario, strategy)
// means over the seeds that completed. This is the table EXPERIMENTS.md
// quotes.
func (r *StrategyReport) Summary() string {
	type key struct{ scenario, strategy string }
	type agg struct {
		n                   int
		freeze, down, degr  float64
		bytes               uint64
		completed, survived int
		snaps               []*obs.Snapshot
	}
	aggs := make(map[key]*agg)
	var scenarios, strategies []string
	seenSc := map[string]bool{}
	seenSt := map[string]bool{}
	for _, res := range r.Results {
		if !seenSt[res.Strategy] {
			seenSt[res.Strategy] = true
			strategies = append(strategies, res.Strategy)
		}
		if !seenSc[res.Scenario] {
			seenSc[res.Scenario] = true
			scenarios = append(scenarios, res.Scenario)
		}
		k := key{res.Scenario, res.Strategy}
		a := aggs[k]
		if a == nil {
			a = &agg{}
			aggs[k] = a
		}
		if res.Survived {
			a.survived++
		}
		if res.Obs != nil && res.Obs.Snap != nil {
			a.snaps = append(a.snaps, res.Obs.Snap)
		}
		if m := res.Metrics; m != nil && res.Completed {
			a.completed++
			a.n++
			a.freeze += float64(m.FreezeTime) / 1e6
			a.down += float64(m.FreezeTime+m.StallTime) / 1e6
			a.degr += float64(m.DegradedWindow) / 1e6
			a.bytes += m.MemPageBytes
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "strategy race summary: mean over completed seeds, per scenario\n")
	fmt.Fprintf(&b, "%-18s %-9s %9s %10s %10s %10s %10s %12s\n",
		"scenario", "strategy", "completed", "freeze-ms", "down-ms", "p99dn-ms", "degr-ms", "page-bytes")
	for _, sc := range scenarios {
		for _, st := range strategies {
			a := aggs[key{sc, st}]
			if a == nil {
				continue
			}
			// p99 downtime across the cell group's histograms, bucket-merged
			// so the percentile covers every seed, not a mean of per-seed
			// estimates.
			p99 := "-"
			if merged, err := obs.MergeSnapshots(a.snaps...); err == nil && merged != nil {
				if h, ok := merged.Hist("mig/downtime_us"); ok && h.N > 0 {
					v, _ := merged.HistogramPercentile("mig/downtime_us", 99)
					p99 = fmt.Sprintf("%.2f", v/1e3)
				}
			}
			if a.n == 0 {
				fmt.Fprintf(&b, "%-18s %-9s %9d %10s %10s %10s %10s %12s\n",
					sc, st, a.completed, "-", "-", p99, "-", "-")
				continue
			}
			n := float64(a.n)
			fmt.Fprintf(&b, "%-18s %-9s %9d %10.2f %10.2f %10s %10.2f %12d\n",
				sc, st, a.completed, a.freeze/n, a.down/n, p99, a.degr/n, a.bytes/uint64(a.n))
		}
	}
	return b.String()
}

// RunStrategySweep races every configured migration strategy through
// every chaos scenario at every seed. Each cell owns a private
// scheduler and cluster; cells fan out over cfg.Chaos.Workers
// goroutines and merge in canonical order, so the report — trace hashes
// included — is bit-identical at any worker count.
func RunStrategySweep(cfg StrategySweepConfig) (*StrategyReport, error) {
	strategies := cfg.Strategies
	if len(strategies) == 0 {
		strategies = migration.StrategyNames()
	}
	type cell struct {
		strategy string
		sc       ChaosScenario
		seed     uint64
	}
	var cells []cell
	for _, st := range strategies {
		if _, err := migration.StrategyByName(st); err != nil {
			return nil, err
		}
		for _, sc := range cfg.Chaos.Scenarios {
			for _, seed := range cfg.Chaos.Seeds {
				cells = append(cells, cell{strategy: st, sc: sc, seed: seed})
			}
		}
	}
	results, err := RunParallelProf(cells, cfg.Chaos.Workers, cfg.Chaos.Prof.Sweep("strategy-sweep", cfg.Chaos.Workers), func(c cell) (*StrategyResult, error) {
		mig, err := migration.StrategyByName(c.strategy)
		if err != nil {
			return nil, err
		}
		chaos := cfg.Chaos // value copy; the cell owns its config
		chaos.MigCfg.Mig = mig
		res, err := RunChaosScenario(chaos, c.sc, c.seed)
		if err != nil {
			return nil, fmt.Errorf("strategy %s chaos %s seed %d: %w", c.strategy, c.sc.Name, c.seed, err)
		}
		return &StrategyResult{Strategy: c.strategy, ChaosResult: res}, nil
	})
	if err != nil {
		return nil, err
	}
	return &StrategyReport{Results: results}, nil
}
