package eval

import (
	"fmt"
	"sort"
	"strings"

	"dvemig/internal/faults"
	"dvemig/internal/lb"
	"dvemig/internal/migration"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// Failover chaos: the detector-driven failover path under node crashes
// and partitions, audited for the one property the single-IP broadcast
// cluster makes existential — no port is ever served by two owners, and
// a healed stale owner emits zero packets. A UDP "scoreboard" service
// answers client pings on the cluster IP; per-node sniffers on the
// public links record exactly which machine every reply left from, so
// double ownership cannot hide.

// scorePort is the scoreboard service's UDP port on the cluster IP.
const scorePort = 6000

// FailoverEnv is the environment a failover scenario's Arm hook
// sabotages: three nodes with conductors, the service owned by node 1
// (index 0), standbys with images on nodes 2 and 3 — node 2's fresher.
type FailoverEnv struct {
	Sched      *simtime.Scheduler
	Cluster    *proc.Cluster
	Inj        *faults.Injector
	Conductors []*lb.Conductor
	// FaultAt is when the harness expects the fault to begin.
	FaultAt simtime.Time
}

// FailoverScenario is one named fault script. Arm schedules the fault
// and returns (convergeBy, healAt): by convergeBy the cluster must be
// back to exactly one serving owner; healAt is when a partitioned old
// owner regains connectivity (0 = it never does — crash scenarios).
type FailoverScenario struct {
	Name string
	Arm  func(env *FailoverEnv) (convergeBy, healAt simtime.Time)
	// WantFailover: whether a standby activation must happen (false for
	// flap scenarios, where the owner must keep the service).
	WantFailover bool
}

// DefaultFailoverScenarios is the failover battery: a steady-state
// crash, a partition that heals after the standby side took over, and
// a link flap too short to trigger anything.
func DefaultFailoverScenarios() []FailoverScenario {
	return []FailoverScenario{
		{Name: "steady-crash", WantFailover: true,
			Arm: func(e *FailoverEnv) (simtime.Time, simtime.Time) {
				e.Sched.At(e.FaultAt, "failover.crash", func() {
					e.Cluster.Nodes[0].Fail(e.Cluster)
				})
				// Dead at +PeerTimeout(4s)+tick, claim window 2s, slack.
				return e.FaultAt + 10*1e9, 0
			}},
		{Name: "partition-heal", WantFailover: true,
			Arm: func(e *FailoverEnv) (simtime.Time, simtime.Time) {
				// The owner's in-cluster link goes dark for 14s; its public
				// link keeps delivering every client packet — the broadcast
				// router's gift to split brain. The owner must self-fence,
				// the standby side take over, and the heal end in a fence,
				// not a resume.
				healAt := e.FaultAt + 14*1e9
				e.Inj.DownFor(e.Cluster.Nodes[0].LocalNIC, e.FaultAt, healAt)
				return e.FaultAt + 10*1e9, healAt
			}},
		{Name: "flap", WantFailover: false,
			Arm: func(e *FailoverEnv) (simtime.Time, simtime.Time) {
				// Down for 3s: past SuspectAfter, short of PeerTimeout.
				// Nobody may claim, activate, or suspend; the service rides
				// through on the owner.
				e.Inj.DownFor(e.Cluster.Nodes[0].LocalNIC, e.FaultAt, e.FaultAt+3*1e9)
				return e.FaultAt + 6*1e9, 0
			}},
	}
}

// FailoverResult is the outcome of one (scenario, seed) cell.
type FailoverResult struct {
	Scenario string
	Seed     uint64
	// Activations sums standby activations across conductors.
	Activations int
	// OwnerNode is the index of the node serving at the end (-1 = none).
	OwnerNode int
	// RepliesTotal counts scoreboard replies the client received.
	RepliesTotal int
	// Violations lists breaches of the exactly-once / single-owner /
	// mute-stale-owner audits (empty = the failover contract held).
	Violations []string
	// TraceHash folds the packet traces of the client access link and
	// all three public server links; equal hashes mean bit-identical
	// runs.
	TraceHash uint64
}

// FailoverReport aggregates a sweep.
type FailoverReport struct {
	Results []*FailoverResult
}

// Table renders the sweep for console output.
func (r *FailoverReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "failover chaos: single-owner and exactly-once audits per scenario\n")
	fmt.Fprintf(&b, "%-16s %6s %12s %7s %9s %11s %18s\n",
		"scenario", "seed", "activations", "owner", "replies", "violations", "trace-hash")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-16s %6d %12d %7d %9d %11d %#18x\n",
			res.Scenario, res.Seed, res.Activations, res.OwnerNode,
			res.RepliesTotal, len(res.Violations), res.TraceHash)
	}
	return b.String()
}

// RunFailoverSweep runs every scenario at every seed, fanning the
// (scenario, seed) cells over up to workers goroutines (<= 0 selects
// GOMAXPROCS, 1 is the serial path). The report is bit-identical at
// every worker count; see RunParallel.
func RunFailoverSweep(scenarios []FailoverScenario, seeds []uint64, workers int) (*FailoverReport, error) {
	type cell struct {
		sc   FailoverScenario
		seed uint64
	}
	cells := make([]cell, 0, len(scenarios)*len(seeds))
	for _, sc := range scenarios {
		for _, seed := range seeds {
			cells = append(cells, cell{sc: sc, seed: seed})
		}
	}
	results, err := RunParallel(cells, workers, func(c cell) (*FailoverResult, error) {
		res, err := RunFailoverScenario(c.sc, c.seed)
		if err != nil {
			return nil, fmt.Errorf("failover %s seed %d: %w", c.sc.Name, c.seed, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return &FailoverReport{Results: results}, nil
}

// serveSniffer hashes every packet event and records when scoreboard
// replies (UDP, source port scorePort) leave the node.
type serveSniffer struct {
	fnv        *fnvSniffer
	firstServe simtime.Time
	lastServe  simtime.Time
	serves     int
}

func (s *serveSniffer) Capture(at simtime.Time, dir string, p *netsim.Packet) {
	s.fnv.Capture(at, dir, p)
	if dir == "tx" && p.Proto == netsim.ProtoUDP && p.SrcPort == scorePort {
		if s.serves == 0 {
			s.firstServe = at
		}
		s.lastServe = at
		s.serves++
	}
}

// RunFailoverScenario runs one (scenario, seed) cell.
func RunFailoverScenario(sc FailoverScenario, seed uint64) (*FailoverResult, error) {
	sched := simtime.NewScheduler()
	cluster := proc.NewCluster(sched, 3)
	inj := faults.NewInjector(sched, seed)

	var migs []*migration.Migrator
	var conds []*lb.Conductor
	for _, n := range cluster.Nodes {
		m, err := migration.NewMigrator(n, migration.DefaultConfig())
		if err != nil {
			return nil, err
		}
		migs = append(migs, m)
		cd, err := lb.NewConductor(n, m, lb.DefaultConfig())
		if err != nil {
			return nil, err
		}
		conds = append(conds, cd)
	}

	// Standbys on nodes 2 and 3.
	for i := 1; i <= 2; i++ {
		sb, err := migration.NewStandby(cluster.Nodes[i])
		if err != nil {
			return nil, err
		}
		conds[i].EnableFailover(sb)
	}

	// Per-node public-link sniffers plus one on the client access link.
	nodeSniff := make([]*serveSniffer, 3)
	for i, n := range cluster.Nodes {
		nodeSniff[i] = &serveSniffer{fnv: newFnvSniffer()}
		n.PublicNIC.AttachSniffer(nodeSniff[i])
	}
	host := cluster.NewExternalHost("players")
	clientNIC := cluster.LastExternalNIC()
	clientSniff := newFnvSniffer()
	clientNIC.AttachSniffer(clientSniff)

	// The scoreboard service on node 1: echoes every ping, keeps a
	// counter in page 0 so checkpoint images have changing content.
	owner := cluster.Nodes[0]
	p := owner.Spawn("scoreboard", 1)
	v := p.AS.Mmap(8*proc.PageSize, "rw-")
	p.Tick = func(self *proc.Process) {
		cur, _ := self.AS.Read(v.Start, 8)
		x := uint64(cur[0]) | uint64(cur[1])<<8
		x++
		_ = self.AS.Write(v.Start, []byte{byte(x), byte(x >> 8)})
		_, udp := self.Sockets()
		for _, us := range udp {
			for {
				d, ok := us.Recv()
				if !ok {
					break
				}
				_ = us.SendTo(d.SrcIP, d.SrcPort, d.Payload)
			}
		}
	}
	us := netstack.NewUDPSocket(owner.Stack)
	if err := us.Bind(cluster.ClusterIP, scorePort); err != nil {
		return nil, err
	}
	p.FDs.Install(&proc.UDPFile{Sock: us})
	owner.StartLoop(p, 50*1e6)

	// Guardians ship images to both standbys; node 2's is fresher
	// (shorter interval), so it must win the claim election.
	g1, err := migration.NewGuardian(p, cluster.Nodes[1].LocalIP, 500*1e6)
	if err != nil {
		return nil, err
	}
	g2, err := migration.NewGuardian(p, cluster.Nodes[2].LocalIP, 700*1e6)
	if err != nil {
		return nil, err
	}
	g2.Epoch = conds[0].AnnounceOwnership("scoreboard", g1)

	// The client pings the scoreboard every 50ms and tallies replies.
	cli := netstack.NewUDPSocket(host)
	cliAddr, err := host.SourceAddrFor(cluster.ClusterIP)
	if err != nil {
		return nil, err
	}
	cli.BindEphemeral(cliAddr)
	replyCount := make(map[string]int)
	cli.OnReadable = func() {
		for {
			d, ok := cli.Recv()
			if !ok {
				break
			}
			replyCount[string(d.Payload)]++
		}
	}
	seq := 0
	sentAt := make(map[string]simtime.Time)
	pinger := simtime.NewTicker(sched, 50*1e6, "failover.pinger", func() {
		msg := fmt.Sprintf("p%d;", seq)
		seq++
		sentAt[msg] = sched.Now()
		_ = cli.SendTo(cluster.ClusterIP, scorePort, []byte(msg))
	})
	pinger.Start()

	env := &FailoverEnv{
		Sched: sched, Cluster: cluster, Inj: inj,
		Conductors: conds, FaultAt: 5 * 1e9,
	}
	convergeBy, healAt := sc.Arm(env)

	end := convergeBy + 8*1e9
	if healAt > 0 && healAt+8*1e9 > end {
		end = healAt + 8*1e9
	}
	sched.RunUntil(end - 1e9)
	pinger.Stop()
	sched.RunUntil(end)

	res := &FailoverResult{Scenario: sc.Name, Seed: seed, OwnerNode: -1}
	for _, cd := range conds {
		res.Activations += cd.Failovers
	}
	for _, n := range replyCount {
		res.RepliesTotal += n
	}

	// Audit 1 — exactly-once: no ping is ever answered twice (a
	// duplicate means two owners heard the same broadcast datagram),
	// and every ping sent after convergence is answered exactly once.
	dups := 0
	for _, n := range replyCount {
		if n > 1 {
			dups++
		}
	}
	if dups > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%d pings answered more than once", dups))
	}
	missed := 0
	for msg, at := range sentAt {
		if at >= convergeBy && at < end-2*1e9 && replyCount[msg] == 0 {
			missed++
		}
	}
	if missed > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%d post-convergence pings unanswered", missed))
	}

	// Audit 2 — single owner: exactly one node runs the service at the
	// end, and it is the expected one.
	for i, n := range cluster.Nodes {
		for _, pr := range n.Processes() {
			if pr.Name == "scoreboard" && pr.State == proc.ProcRunning {
				if res.OwnerNode != -1 {
					res.Violations = append(res.Violations, "service running on two nodes")
				}
				res.OwnerNode = i
			}
		}
	}
	wantOwner, wantActivations := 0, 0
	if sc.WantFailover {
		wantOwner, wantActivations = 1, 1 // the fresher standby
	}
	if res.OwnerNode != wantOwner {
		res.Violations = append(res.Violations,
			fmt.Sprintf("owner on node %d, want %d", res.OwnerNode, wantOwner))
	}
	if res.Activations != wantActivations {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%d activations, want %d", res.Activations, wantActivations))
	}

	// Audit 3 — clean handover, mute stale owner: after a failover the
	// old owner's last reply predates the new owner's first; node 3
	// (stale image) never serves; after a heal the old owner emits
	// nothing — not one packet from the stale epoch.
	if sc.WantFailover {
		if nodeSniff[1].serves == 0 {
			res.Violations = append(res.Violations, "new owner never served")
		} else if nodeSniff[0].serves > 0 && nodeSniff[0].lastServe >= nodeSniff[1].firstServe {
			res.Violations = append(res.Violations,
				fmt.Sprintf("overlapping service: old owner still replying at %d, new owner started %d",
					nodeSniff[0].lastServe, nodeSniff[1].firstServe))
		}
		if healAt > 0 && nodeSniff[0].lastServe >= healAt {
			res.Violations = append(res.Violations, "stale owner served after the heal")
		}
	}
	if nodeSniff[2].serves > 0 {
		res.Violations = append(res.Violations, "node with stale image served")
	}

	// Fold the four link traces into one order-fixed hash.
	h := newFnvSniffer()
	h.word(clientSniff.h)
	for _, s := range nodeSniff {
		h.word(s.fnv.h)
	}
	res.TraceHash = h.h
	sort.Strings(res.Violations)
	return res, nil
}
