package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dvemig/internal/obs"
	"dvemig/internal/proc"
	"dvemig/internal/simtime"
)

// TestSoakIncrementalAuditCanary injects a deliberate single-owner
// violation mid-run — a forged duplicate commit of a running service on
// two other workers at t=8.5s — and asserts the incremental audit flags
// it inside its containing sample window (index 8 at the default 1 s
// cadence), not at teardown, with the flight dump scoped to that
// window. This is the detection-latency contract: a soak that only
// audits at quiescence reports "something broke" hours late; the
// windowed audit names the second it happened.
func TestSoakIncrementalAuditCanary(t *testing.T) {
	cfg := shortSoakConfig()
	cfg.Seeds = []uint64{1}
	cfg.FlightDepth = 256
	canary := SoakScenario{
		Name: "canary-dup",
		Arm: func(e *SoakEnv) {
			e.Sched.After(8500*simtime.Duration(time.Millisecond), "canary.dup", func() {
				// Two duplicates: even if the original is frozen mid-migration
				// at this instant, two owners are running — the forged state
				// can never masquerade as a legal freeze window.
				for _, n := range []*proc.Node{e.Workers[1], e.Workers[2]} {
					d := n.Spawn("svc00", 1)
					d.CPUDemand = 0.05
				}
			})
		},
	}
	cfg.Scenarios = []SoakScenario{canary}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if len(res.Violations) == 0 {
		t.Fatal("canary not detected at all")
	}
	if res.FirstViolationWindow != 8 {
		t.Fatalf("first violation in window %d, want 8 (injection at 8.5s, 1s cadence)\nviolations: %v",
			res.FirstViolationWindow, res.Violations)
	}
	if !strings.Contains(res.Violations[0], "window 8 [8s, 9s)") {
		t.Fatalf("violation not window-scoped: %q", res.Violations[0])
	}
	if !strings.Contains(res.Violations[0], "single-owner broken: svc00") {
		t.Fatalf("unexpected first violation: %q", res.Violations[0])
	}
	if !strings.Contains(res.FlightDump, "flight dump @ sample window 8 [8.000000s, 9.000000s)") {
		t.Fatalf("flight dump not scoped to the violating window:\n%.200s", res.FlightDump)
	}
}

// TestSoakSamplingDisabledFallsBackToTeardown is the control for the
// canary: with sampling off the same violation is still caught, but
// only by the teardown audit (window -1, unscoped dump).
func TestSoakSamplingDisabledFallsBackToTeardown(t *testing.T) {
	cfg := shortSoakConfig()
	cfg.Seeds = []uint64{1}
	cfg.Requests = 20
	cfg.FlightDepth = 64
	cfg.SamplePeriod = -1
	cfg.Scenarios = []SoakScenario{{
		Name: "canary-dup",
		Arm: func(e *SoakEnv) {
			e.Sched.After(5*simtime.Duration(time.Second), "canary.dup", func() {
				for _, n := range []*proc.Node{e.Workers[1], e.Workers[2]} {
					d := n.Spawn("svc00", 1)
					d.CPUDemand = 0.05
				}
			})
		},
	}}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if res.Windows != 0 || res.FirstViolationWindow != -1 {
		t.Fatalf("sampling should be off: windows=%d first=%d", res.Windows, res.FirstViolationWindow)
	}
	if len(res.Violations) == 0 {
		t.Fatal("teardown audit missed the canary")
	}
	if strings.Contains(res.FlightDump, "sample window") {
		t.Fatalf("dump should be unscoped with sampling off:\n%.120s", res.FlightDump)
	}
	if res.FlightDump == "" {
		t.Fatal("no flight dump at teardown")
	}
}

// TestSoakSeriesArtifactDeterministic re-runs an observed sweep at
// worker counts 1, 4 and 8 and asserts the exported series artifact —
// timestamps, values, SLO verdicts, byte for byte — is identical. The
// sampler's aligned ticks are state-independent, so parallelism must
// not show in the artifact.
func TestSoakSeriesArtifactDeterministic(t *testing.T) {
	cfg := shortSoakConfig()
	cfg.Scenarios = DefaultSoakScenarios()[:2] // healthy, lossy
	cfg.Seeds = []uint64{5}
	cfg.Requests = 25
	cfg.Observe = true
	var base []byte
	for _, w := range []int{1, 4, 8} {
		c := cfg
		c.Workers = w
		rep, err := RunSoak(c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteSeriesJSON(&buf, rep.Captures()...); err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateSeriesJSON(buf.Bytes()); err != nil {
			t.Fatalf("workers=%d: invalid series artifact: %v", w, err)
		}
		if base == nil {
			base = append([]byte(nil), buf.Bytes()...)
			continue
		}
		if !bytes.Equal(base, buf.Bytes()) {
			t.Fatalf("workers=%d series artifact differs from workers=1 (%d vs %d bytes)",
				w, len(buf.Bytes()), len(base))
		}
	}
}

// TestSoakSLOResultsRecorded checks the SLO engine rides along: every
// observed cell carries a verdict per default objective, evaluated over
// at least one window, and the report renders the table.
func TestSoakSLOResultsRecorded(t *testing.T) {
	cfg := shortSoakConfig()
	cfg.Scenarios = DefaultSoakScenarios()[:1]
	cfg.Seeds = []uint64{1}
	cfg.Requests = 15
	cfg.Observe = true
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if len(res.SLO) != len(DefaultSoakSLOs()) {
		t.Fatalf("SLO verdicts = %d, want %d", len(res.SLO), len(DefaultSoakSLOs()))
	}
	for _, s := range res.SLO {
		if s.Samples == 0 {
			t.Fatalf("%s evaluated over 0 windows", s.Name)
		}
		if len(s.Burns) != len(obs.DefaultBurnWindows) {
			t.Fatalf("%s burns = %+v", s.Name, s.Burns)
		}
	}
	if res.Windows == 0 || res.Obs.Series == nil {
		t.Fatalf("no sampled windows: %d / %v", res.Windows, res.Obs.Series)
	}
	tbl := rep.SLOTable()
	if !strings.Contains(tbl, "downtime-p99") || !strings.Contains(tbl, "retry-budget") {
		t.Fatalf("SLO table incomplete:\n%s", tbl)
	}
}

// TestSoakMergedSeriesRagged merges two cells whose runs are different
// lengths: the merged series must be as long as the longest
// contributor, with the shorter cell contributing zero past its end.
func TestSoakMergedSeriesRagged(t *testing.T) {
	cfg := shortSoakConfig()
	cfg.Scenarios = DefaultSoakScenarios()[:1]
	cfg.Seeds = []uint64{1, 2}
	cfg.Requests = 10
	cfg.Observe = true
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Captures()) != 2 {
		t.Fatalf("captures = %d", len(rep.Captures()))
	}
	merged, err := rep.MergedSeries()
	if err != nil {
		t.Fatal(err)
	}
	if merged == nil || merged.Len() == 0 {
		t.Fatal("merged series empty")
	}
	maxLen := 0
	for _, c := range rep.Captures() {
		for _, name := range c.Series.Names() {
			if l := c.Series.Series(name).Len(); l > maxLen {
				maxLen = l
			}
		}
	}
	gotMax := 0
	for _, name := range merged.Names() {
		if l := merged.Series(name).Len(); l > gotMax {
			gotMax = l
		}
	}
	if gotMax != maxLen {
		t.Fatalf("merged max len = %d, want longest contributor %d", gotMax, maxLen)
	}
	// Spot-check a counter series: the merged final value must equal the
	// sum of the two cells' final values (cumulative counters).
	name := "soak/submitted_total"
	var want float64
	for _, c := range rep.Captures() {
		if ts := c.Series.Series(name); ts != nil {
			_, v, ok := ts.Last()
			if !ok {
				t.Fatalf("%s empty in a cell", name)
			}
			want += v
		}
	}
	ts := merged.Series(name)
	if ts == nil {
		t.Fatalf("%s missing from merge", name)
	}
	_, got, _ := ts.Last()
	if got != want {
		t.Fatalf("merged %s final = %v, want %v", name, got, want)
	}
	// MergedSnapshot still works alongside (empty-capture tolerance is
	// covered by MergeSnapshots itself).
	if _, err := rep.MergedSnapshot(); err != nil {
		t.Fatal(err)
	}
}

// TestSoakMergedSeriesNoCaptures pins the empty edge: an unobserved
// sweep merges to nil without error.
func TestSoakMergedSeriesNoCaptures(t *testing.T) {
	rep := &SoakReport{Results: []*SoakResult{{Scenario: "x", Seed: 1}}}
	st, err := rep.MergedSeries()
	if err != nil || st != nil {
		t.Fatalf("want (nil, nil), got (%v, %v)", st, err)
	}
	if tbl := rep.SLOTable(); tbl != "" {
		t.Fatalf("SLO table for slo-less sweep: %q", tbl)
	}
}
