package eval

import (
	"bytes"
	"testing"

	"dvemig/internal/obs"
	"dvemig/internal/simprof"
)

// TestSimprofArtifactsByteIdentical is the self-profiling plane's
// determinism contract: the trace, metrics and series artifacts of a
// run must be byte-identical with profiling on or off, at workers 1 and
// 8. The profiler only reads the host clock and MemStats — it never
// schedules events or feeds a sim-time decision — so its presence can
// never show in the simulated results.
func TestSimprofArtifactsByteIdentical(t *testing.T) {
	// Chaos sweep → trace + metrics artifacts.
	renderChaos := func(workers int, prof *simprof.Profiler) (trace, metrics []byte) {
		cfg := DefaultChaosConfig()
		cfg.Scenarios = DefaultChaosScenarios()[:2]
		cfg.Seeds = []uint64{1}
		cfg.Workers = workers
		cfg.Observe = true
		cfg.Prof = prof
		rep, err := RunChaosSweep(cfg)
		if err != nil {
			t.Fatalf("workers=%d prof=%v: %v", workers, prof != nil, err)
		}
		var tb, mb bytes.Buffer
		if err := obs.WriteChromeTrace(&tb, rep.Captures()...); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteMetricsText(&mb, rep.Captures()...); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes()
	}
	refTrace, refMetrics := renderChaos(1, nil)
	if len(refTrace) == 0 || len(refMetrics) == 0 {
		t.Fatal("reference artifacts empty")
	}
	for _, w := range []int{1, 8} {
		for _, profiled := range []bool{false, true} {
			if w == 1 && !profiled {
				continue // the reference itself
			}
			var prof *simprof.Profiler
			if profiled {
				prof = simprof.New(1)
			}
			gotTrace, gotMetrics := renderChaos(w, prof)
			if !bytes.Equal(refTrace, gotTrace) {
				t.Errorf("trace differs at workers=%d profiled=%v (%d vs %d bytes)",
					w, profiled, len(refTrace), len(gotTrace))
			}
			if !bytes.Equal(refMetrics, gotMetrics) {
				t.Errorf("metrics differ at workers=%d profiled=%v (%d vs %d bytes)",
					w, profiled, len(refMetrics), len(gotMetrics))
			}
			if profiled {
				// The profiler must actually have observed the run it rode on.
				r := prof.Report()
				if r.EventLoopTotal == nil || r.EventLoopTotal.Events == 0 {
					t.Errorf("workers=%d: profiler attached but recorded no events", w)
				}
			}
		}
	}

	// Soak → series artifact, same on/off × worker-count grid.
	renderSoak := func(workers int, prof *simprof.Profiler) []byte {
		cfg := shortSoakConfig()
		cfg.Scenarios = DefaultSoakScenarios()[:2]
		cfg.Seeds = []uint64{5}
		cfg.Requests = 25
		cfg.Observe = true
		cfg.Workers = workers
		cfg.Prof = prof
		rep, err := RunSoak(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteSeriesJSON(&buf, rep.Captures()...); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	refSeries := renderSoak(1, nil)
	if len(refSeries) == 0 {
		t.Fatal("reference series artifact empty")
	}
	for _, w := range []int{1, 8} {
		for _, profiled := range []bool{false, true} {
			if w == 1 && !profiled {
				continue
			}
			var prof *simprof.Profiler
			if profiled {
				prof = simprof.New(1)
			}
			if got := renderSoak(w, prof); !bytes.Equal(refSeries, got) {
				t.Errorf("series differs at workers=%d profiled=%v (%d vs %d bytes)",
					w, profiled, len(refSeries), len(got))
			}
		}
	}
}

// TestSimprofChaosAttribution is the attribution acceptance bar: a
// profiled chaos sweep must attribute at least 90% of measured
// event-loop wall time to named subsystem buckets, with the remainder
// in "other". An attribution hole would mean a subsystem is scheduling
// events under names SubsystemOf cannot bucket.
func TestSimprofChaosAttribution(t *testing.T) {
	prof := simprof.New(1)
	cfg := DefaultChaosConfig()
	cfg.Scenarios = DefaultChaosScenarios()[:3]
	cfg.Seeds = []uint64{1}
	cfg.Workers = 1
	cfg.Prof = prof
	if _, err := RunChaosSweep(cfg); err != nil {
		t.Fatal(err)
	}
	r := prof.Report()
	if r.EventLoopTotal == nil {
		t.Fatal("no event-loop attribution recorded")
	}
	el := r.EventLoopTotal
	if el.Events == 0 || el.WallNs <= 0 {
		t.Fatalf("event loop recorded nothing: %+v", el)
	}
	if el.AttributedFrac < 0.9 {
		t.Errorf("attributed fraction %.3f < 0.90; buckets: %+v", el.AttributedFrac, el.Buckets)
	}
	named := map[string]bool{}
	for _, b := range el.Buckets {
		if b.Subsystem != "other" {
			named[b.Subsystem] = true
		}
	}
	// The chaos cells are TCP clients migrating over the simulated
	// network under a migration daemon — those three subsystems must
	// show up by name.
	for _, want := range []string{"netsim", "tcp", "migd"} {
		if !named[want] {
			t.Errorf("expected subsystem %q in attribution buckets: %+v", want, el.Buckets)
		}
	}
	// Sweep occupancy rode along.
	if len(r.Sweeps) != 1 || r.Sweeps[0].Label != "chaos-sweep" {
		t.Fatalf("sweep reports: %+v", r.Sweeps)
	}
	sw := r.Sweeps[0]
	if sw.WorkersRequested != 1 || sw.WorkersEffective != 1 || sw.Cells != 3 {
		t.Errorf("sweep geometry wrong: %+v", sw)
	}
	if len(sw.Workers) != 1 || sw.Workers[0].Occupancy <= 0 {
		t.Errorf("worker occupancy missing: %+v", sw.Workers)
	}
	// Phase skew rode along: chaos cells run real migrations, so at
	// least one phase must have been recorded.
	if len(r.PhaseSkewTotal) == 0 {
		t.Error("no phase skew recorded from migrating chaos cells")
	}
}
