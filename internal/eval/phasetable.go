package eval

import (
	"fmt"
	"strings"

	"dvemig/internal/migration"
	"dvemig/internal/obs"
)

// PhaseTablePhases is the source-side migration path shown in the
// per-phase breakdown, in protocol order.
var PhaseTablePhases = []string{"connect", "precopy", "freeze", "transfer", "done"}

// PhaseTable renders the Fig 5c-style per-phase latency breakdown from
// the points' merged metric snapshots: one block per strategy, one row
// per connection count, one column per phase, each cell the mean
// phase-to-phase latency in ms (PhaseEvent.Time-Since as recorded by
// the migration engine's mig/phase_<name>_us histograms). Points
// without a snapshot (unobserved runs) render as "-" rows; this
// replaces the hand-rolled per-phase aggregation experiments used to do
// from raw OnPhase callbacks.
func PhaseTable(points []*FreezePoint) string {
	byKey := map[[2]int]*FreezePoint{}
	conns := map[int]bool{}
	strategies := map[int]bool{}
	for _, p := range points {
		byKey[[2]int{p.Conns, int(p.Strategy)}] = p
		conns[p.Conns] = true
		strategies[int(p.Strategy)] = true
	}
	var b strings.Builder
	b.WriteString("per-phase migration latency, mean ms (phase event minus previous phase event)\n")
	for _, s := range SweepStrategies {
		if !strategies[int(s)] {
			continue
		}
		fmt.Fprintf(&b, "[%s]\n%8s", s, "conns")
		for _, ph := range PhaseTablePhases {
			fmt.Fprintf(&b, "%12s", ph)
		}
		fmt.Fprintf(&b, "%12s\n", "total")
		for _, n := range SweepConns {
			if !conns[n] {
				continue
			}
			p := byKey[[2]int{n, int(s)}]
			if p == nil {
				continue
			}
			fmt.Fprintf(&b, "%8d", n)
			total := 0.0
			for _, ph := range PhaseTablePhases {
				mean, ok := phaseMeanUs(p.Snap, ph)
				if !ok {
					fmt.Fprintf(&b, "%12s", "-")
					continue
				}
				total += mean
				fmt.Fprintf(&b, "%12.3f", mean/1e3)
			}
			if total > 0 {
				fmt.Fprintf(&b, "%12.3f", total/1e3)
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FreezeAttrTable renders the per-connection freeze-time attribution
// (the Fig 5b breakdown axis): one block per strategy, one row per
// connection count, one column per freeze component — coordination
// (freeze round-trips and capture-ack waits), page_copy (dirty-page
// transfer), socket_serialize (per-socket subtraction/serialization
// cost) and xlat (translation-rule install window) — each cell the mean
// attributed time in ms from the engine's
// mig/freeze_attr/conns=NNNN/<component>_us histograms. The components
// sum to the freeze time, so the table says where each extra connection's
// freeze milliseconds actually go.
func FreezeAttrTable(points []*FreezePoint) string {
	byKey := map[[2]int]*FreezePoint{}
	conns := map[int]bool{}
	strategies := map[int]bool{}
	for _, p := range points {
		byKey[[2]int{p.Conns, int(p.Strategy)}] = p
		conns[p.Conns] = true
		strategies[int(p.Strategy)] = true
	}
	var b strings.Builder
	b.WriteString("freeze-time attribution by connection count, mean ms per component\n")
	for _, s := range SweepStrategies {
		if !strategies[int(s)] {
			continue
		}
		fmt.Fprintf(&b, "[%s]\n%8s", s, "conns")
		for _, comp := range migration.FreezeAttrComponents {
			fmt.Fprintf(&b, "%17s", comp)
		}
		fmt.Fprintf(&b, "%17s\n", "freeze-total")
		for _, n := range SweepConns {
			if !conns[n] {
				continue
			}
			p := byKey[[2]int{n, int(s)}]
			if p == nil {
				continue
			}
			fmt.Fprintf(&b, "%8d", n)
			total := 0.0
			seen := false
			for _, comp := range migration.FreezeAttrComponents {
				mean, ok := histMeanUs(p.Snap, migration.FreezeAttrMetric(n, comp))
				if !ok {
					fmt.Fprintf(&b, "%17s", "-")
					continue
				}
				seen = true
				total += mean
				fmt.Fprintf(&b, "%17.3f", mean/1e3)
			}
			if seen {
				fmt.Fprintf(&b, "%17.3f", total/1e3)
			} else {
				fmt.Fprintf(&b, "%17s", "-")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// histMeanUs reads one histogram's mean out of a snapshot.
func histMeanUs(s *obs.Snapshot, name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	h, ok := s.Hist(name)
	if !ok || h.N == 0 {
		return 0, false
	}
	return h.Mean(), true
}

// phaseMeanUs reads one phase histogram's mean out of a snapshot.
func phaseMeanUs(s *obs.Snapshot, phase string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	h, ok := s.Hist("mig/phase_" + phase + "_us")
	if !ok || h.N == 0 {
		return 0, false
	}
	return h.Mean(), true
}
