package eval

import (
	"fmt"
	"testing"
)

// TestFailoverChaosBattery sweeps the failover scenarios over two
// seeds: every cell must pass the exactly-once, single-owner and
// mute-stale-owner audits, and repeat bit-identically — same packet
// trace hash — under the same seed.
func TestFailoverChaosBattery(t *testing.T) {
	seeds := []uint64{1, 2}
	for _, sc := range DefaultFailoverScenarios() {
		for _, seed := range seeds {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed-%d", sc.Name, seed), func(t *testing.T) {
				a, err := RunFailoverScenario(sc, seed)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range a.Violations {
					t.Errorf("violation: %s", v)
				}
				if a.RepliesTotal == 0 {
					t.Fatal("scoreboard never answered a single ping")
				}
				b, err := RunFailoverScenario(sc, seed)
				if err != nil {
					t.Fatal(err)
				}
				if a.TraceHash != b.TraceHash {
					t.Fatalf("trace hash differs across identical runs: %#x vs %#x",
						a.TraceHash, b.TraceHash)
				}
				if len(b.Violations) != len(a.Violations) {
					t.Fatalf("violation count differs across identical runs")
				}
			})
		}
	}
}

// TestFailoverSweepTable smoke-tests the report rendering.
func TestFailoverSweepTable(t *testing.T) {
	rep, err := RunFailoverSweep(DefaultFailoverScenarios()[:1], []uint64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if s := rep.Table(); len(s) == 0 {
		t.Fatal("empty table")
	}
}
