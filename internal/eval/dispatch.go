package eval

import (
	"fmt"

	"dvemig/internal/capture"
	"dvemig/internal/netsim"
	"dvemig/internal/netstack"
	"dvemig/internal/simtime"
)

// DispatchResult reports one run of the dispatch comparison: moving a UDP
// service port between nodes under the paper's broadcast router with
// packet capture, versus the NAT dispatcher baseline [8]/[11] that must
// update its mapping.
type DispatchResult struct {
	Mode      string
	Sent      uint64
	Delivered uint64
	Lost      int
}

// DispatchConfig tunes the comparison.
type DispatchConfig struct {
	// Rate is the client datagram rate (packets per second).
	Rate int
	// FreezeWindow is how long the socket is disabled during the move.
	FreezeWindow simtime.Duration
	// NATUpdateDelay is the router reconfiguration latency of the
	// baseline.
	NATUpdateDelay simtime.Duration
	// Duration of the whole run; the move happens at the midpoint.
	Duration simtime.Duration
}

// DefaultDispatchConfig uses a 2 ms freeze, a 10 ms router update and a
// 1 kHz client.
func DefaultDispatchConfig() DispatchConfig {
	return DispatchConfig{
		Rate:           1000,
		FreezeWindow:   2 * 1e6,
		NATUpdateDelay: 10 * 1e6,
		Duration:       2 * 1e9,
	}
}

// RunDispatchComparison executes both variants and returns their results.
func RunDispatchComparison(cfg DispatchConfig) (broadcast, nat *DispatchResult, err error) {
	if broadcast, err = runDispatch(cfg, true); err != nil {
		return nil, nil, err
	}
	if nat, err = runDispatch(cfg, false); err != nil {
		return nil, nil, err
	}
	return broadcast, nat, nil
}

func runDispatch(cfg DispatchConfig, useBroadcast bool) (*DispatchResult, error) {
	sched := simtime.NewScheduler()
	clusterIP := netsim.MakeAddr(203, 0, 113, 10)
	cliAddr := netsim.MakeAddr(198, 51, 100, 1)

	var n1pub, n2pub, cliNIC *netsim.NIC
	var natR *netsim.NATRouter
	if useBroadcast {
		r := netsim.NewBroadcastRouter(sched, clusterIP)
		n1pub = r.AttachServer("n1.pub", netsim.GigabitEthernet)
		n2pub = r.AttachServer("n2.pub", netsim.GigabitEthernet)
		cliNIC = r.AttachExternal("cli", cliAddr, netsim.GigabitEthernet)
	} else {
		natR = netsim.NewNATRouter(sched, clusterIP, cfg.NATUpdateDelay)
		n1pub = natR.AttachServer("n1.pub", netsim.GigabitEthernet)
		n2pub = natR.AttachServer("n2.pub", netsim.GigabitEthernet)
		cliNIC = natR.AttachExternal("cli", cliAddr, netsim.GigabitEthernet)
	}
	st1 := netstack.NewStack(sched, "n1", 111)
	st1.AttachNIC(n1pub, clusterIP)
	st1.AddRoute(0, 0, n1pub, clusterIP)
	st2 := netstack.NewStack(sched, "n2", 99999)
	st2.AttachNIC(n2pub, clusterIP)
	st2.AddRoute(0, 0, n2pub, clusterIP)
	cliStack := netstack.NewStack(sched, "cli", 7)
	cliStack.AttachNIC(cliNIC, cliAddr)
	cliStack.AddRoute(0, 0, cliNIC, cliAddr)

	const port = 5000
	srv := netstack.NewUDPSocket(st1)
	if err := srv.Bind(clusterIP, port); err != nil {
		return nil, err
	}
	if natR != nil {
		natR.MapPort(netsim.ProtoUDP, port, n1pub)
	}

	cli := netstack.NewUDPSocket(cliStack)
	cli.BindEphemeral(cliAddr)
	var sent uint64
	tk := simtime.NewTicker(sched, simtime.Duration(1e9)/simtime.Duration(cfg.Rate), "cli", func() {
		sent++
		_ = cli.SendTo(clusterIP, port, []byte{byte(sent)})
	})
	tk.Start()

	var moved *netstack.UDPSocket
	moveAt := cfg.Duration / 2
	sched.At(moveAt, "move", func() {
		var filter *capture.Filter
		var capSvc *capture.Service
		if useBroadcast {
			// Paper order: capture first on the destination, then disable.
			capSvc = capture.NewService(st2)
			filter = capSvc.Enable(netsim.FlowKey{LocalPort: port, Proto: netsim.ProtoUDP})
		}
		snap := netstack.SnapshotUDP(srv)
		srv.Unhash()
		restore := func() {
			var err error
			moved, err = netstack.RestoreUDP(st2, snap)
			if err != nil {
				panic(err)
			}
			if filter != nil {
				_, _ = capSvc.ReinjectAndDisable(filter)
			}
		}
		if useBroadcast {
			sched.After(cfg.FreezeWindow, "restore", restore)
		} else {
			// The NAT baseline must additionally wait for the router
			// update before the new node sees any packets; during the
			// whole window traffic still lands on the dead socket.
			natR.UpdateMapping(netsim.ProtoUDP, port, n2pub, nil)
			wait := cfg.FreezeWindow
			if cfg.NATUpdateDelay > wait {
				wait = cfg.NATUpdateDelay
			}
			sched.After(wait, "restore", restore)
		}
	})

	sched.RunUntil(cfg.Duration)
	tk.Stop()
	sched.RunFor(100 * 1e6)

	res := &DispatchResult{Sent: sent}
	res.Delivered = srv.PacketsIn
	if moved != nil {
		res.Delivered = moved.PacketsIn // counter carried over in the snapshot
	}
	res.Lost = int(int64(res.Sent) - int64(res.Delivered))
	if useBroadcast {
		res.Mode = "broadcast+capture"
	} else {
		res.Mode = fmt.Sprintf("nat-dispatch(update=%v)", cfg.NATUpdateDelay)
	}
	return res, nil
}
