package eval

import (
	"testing"
)

// TestChaosSweep runs the full default scenario battery at one seed and
// checks the headline claims: the process survives every scenario, the
// byte-stream invariant holds everywhere, healthy-path scenarios
// complete the migration, and the crash scenario aborts cleanly rather
// than hanging.
func TestChaosSweep(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seeds = []uint64{1}
	// Arm the flight recorder so an invariant violation comes with the
	// last-events window of every track for post-mortem.
	cfg.FlightDepth = 128
	rep, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(cfg.Scenarios) {
		t.Fatalf("got %d results, want %d", len(rep.Results), len(cfg.Scenarios))
	}
	for _, res := range rep.Results {
		if !res.Survived {
			t.Errorf("%s/seed%d: process did not survive", res.Scenario, res.Seed)
		}
		for _, v := range res.Violations {
			t.Errorf("%s/seed%d: invariant violation: %s", res.Scenario, res.Seed, v)
		}
		if len(res.Violations) > 0 && res.FlightDump != "" {
			t.Logf("%s/seed%d flight recorder:\n%s", res.Scenario, res.Seed, res.FlightDump)
		}
		if !res.Completed && !res.Aborted {
			t.Errorf("%s/seed%d: migration neither completed nor aborted (hang)", res.Scenario, res.Seed)
		}
		if res.PendingAfterDrain != 0 {
			t.Errorf("%s/seed%d: %d events still pending after drain (leaked timer)",
				res.Scenario, res.Seed, res.PendingAfterDrain)
		}
		switch res.Scenario {
		case "crash-freeze":
			if !res.Aborted {
				t.Errorf("%s: expected abort, got completion", res.Scenario)
			}
		case "healthy", "dup", "reorder", "jitter":
			if !res.Completed {
				t.Errorf("%s: expected completion, got abort: %s", res.Scenario, res.AbortReason)
			}
		}
	}
	t.Logf("\n%s", rep.Table())
}

// TestChaosScenarioDeterminism runs one chaotic cell twice with the
// same seed and demands bit-identical outcomes, including the packet
// trace hash of the clients' access link.
func TestChaosScenarioDeterminism(t *testing.T) {
	cfg := DefaultChaosConfig()
	var sc ChaosScenario
	for _, s := range cfg.Scenarios {
		if s.Name == "loss-burst" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("loss-burst scenario missing")
	}
	a, err := RunChaosScenario(cfg, sc, 77)
	if err != nil {
		t.Fatal(err)
	}
	// Re-arm: scenarios carry no state, but build a fresh copy of the
	// scenario list to be explicit about it.
	for _, s := range DefaultChaosScenarios() {
		if s.Name == "loss-burst" {
			sc = s
		}
	}
	b, err := RunChaosScenario(cfg, sc, 77)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hash differs across identical runs: %#x vs %#x", a.TraceHash, b.TraceHash)
	}
	if a.Completed != b.Completed || a.Aborted != b.Aborted ||
		a.ClientRetransmits != b.ClientRetransmits || len(a.Violations) != len(b.Violations) {
		t.Fatalf("outcome differs across identical runs: %+v vs %+v", a, b)
	}
}
