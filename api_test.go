package dvemig

import (
	"testing"
	"time"

	"dvemig/internal/proc"
)

// TestPublicAPIMigrationFlow walks the whole public surface: build a
// cluster, run a process holding a live connection, migrate it with the
// facade types only.
func TestPublicAPIMigrationFlow(t *testing.T) {
	sched := NewScheduler()
	cluster := NewCluster(sched, 2)
	var migs []*Migrator
	for _, n := range cluster.Nodes {
		m, err := NewMigrator(n, DefaultMigrationConfig())
		if err != nil {
			t.Fatal(err)
		}
		migs = append(migs, m)
	}
	srv := cluster.Nodes[0].Spawn("svc", 1)
	lst := NewTCPSocket(cluster.Nodes[0])
	if err := lst.Listen(cluster.ClusterIP, 9000); err != nil {
		t.Fatal(err)
	}
	srv.FDs.Install(&proc.TCPFile{Sock: lst})
	lst.OnAccept = func(ch *TCPSocket) { srv.FDs.Install(&proc.TCPFile{Sock: ch}) }
	var got []byte
	srv.Tick = func(self *Process) {
		tcp, _ := self.Sockets()
		for _, sk := range tcp {
			got = append(got, sk.Recv()...)
		}
	}
	cluster.Nodes[0].StartLoop(srv, 50*time.Millisecond)

	ext := cluster.NewExternalHost("cli")
	cli := NewTCPSocketOn(ext)
	if err := cli.Connect(cluster.ClusterIP, 9000); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(time.Second)
	cli.Send([]byte("before"))
	var m *MigrationMetrics
	migs[0].Migrate(srv, cluster.Nodes[1].LocalIP, func(mm *MigrationMetrics, err error) {
		if err != nil {
			t.Errorf("migrate: %v", err)
		}
		m = mm
	})
	sched.RunFor(5 * time.Second)
	if m == nil || m.FreezeTime <= 0 {
		t.Fatal("migration did not complete")
	}
	cli.Send([]byte("+after"))
	sched.RunFor(time.Second)
	if string(got) != "before+after" {
		t.Fatalf("stream = %q", got)
	}
	if m.Strategy != IncrementalCollective {
		t.Fatal("default strategy wrong")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	cfg := DefaultDVEConfig()
	cfg.Duration = 20e9
	r, err := RunDVE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.Get("node1").Len() == 0 {
		t.Fatal("no samples")
	}
	if cfg.Clients != 10000 || cfg.Nodes != 5 {
		t.Fatal("defaults drifted from the paper")
	}
}

func TestPublicAPIConductor(t *testing.T) {
	sched := NewScheduler()
	cluster := NewCluster(sched, 2)
	for _, n := range cluster.Nodes {
		m, err := NewMigrator(n, DefaultMigrationConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewConductor(n, m, DefaultConductorConfig()); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunFor(3 * time.Second)
}

func TestPublicAPIFailover(t *testing.T) {
	sched := NewScheduler()
	cluster := NewCluster(sched, 2)
	sb, err := NewStandby(cluster.Nodes[1])
	if err != nil {
		t.Fatal(err)
	}
	p := cluster.Nodes[0].Spawn("svc", 1)
	p.AS.Mmap(4*4096, "rw-")
	g, err := NewGuardian(p, cluster.Nodes[1].LocalIP, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunFor(time.Second)
	if g.Sent == 0 || !sb.Have("svc") {
		t.Fatal("guardian/standby flow broken via facade")
	}
}
